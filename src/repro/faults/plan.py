"""Deterministic, seed-driven fault planning.

A :class:`FaultPlan` scripts every fault a run will suffer *before*
the run starts, as a pure function of the experiment seed — the same
property the probe streams have (:mod:`repro.rng`).  Two fault
classes exist, with very different contracts:

**Execution faults** (``WORKER_CRASH``, ``SHARD_HANG``) attack the
machinery, not the simulation: a shard worker process dies mid-shard,
or stalls past the runner's per-shard timeout.  The hardened
:class:`~repro.experiment.parallel.ShardedRunner` must *recover* —
retry, rebuild the pool, or re-execute the shard inline — and the
recovered run must be byte-identical (classifications, report text,
provenance JSONL) to a fault-free run, because shard results are a
pure function of ``(spec, snapshot, worker state)``.  Execution
faults fire only on a shard's first attempt, so recovery always
terminates.

**Environment faults** (``PROBE_LOSS``, ``LINK_FLAP``) attack the
simulated world, like the real maintenance outage that collided with
the paper's Internet2 run (§4): a burst of probe loss blanks a block
of prefixes for one round, and an ad-hoc link flap fails and restores
a link between rounds, beyond the scheduled outages.  These
legitimately *change results* — but deterministically: the same seed
and spec produce the same faults in serial and sharded execution, so
``workers``/``shard_size`` remain pure performance knobs even under
injected environment faults.

Events address shards and links by *slot*, an abstract index mapped
onto the concrete shard count / link list at injection time
(``slot % count``), so one plan works at any worker count or scale.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ReproError
from ..rng import derive_seed

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultDirective",
    "FaultPlan",
    "InjectedFault",
    "parse_fault_spec",
    "DEFAULT_HANG_SECONDS",
    "DEFAULT_LOSS_FRACTION",
]

#: How long an injected hang sleeps inside the worker.  Kept short so
#: a hung worker frees its pool slot quickly after the parent times
#: out and falls back; tests override it downward.
DEFAULT_HANG_SECONDS = 2.0

#: Fraction of a round's prefix set blanked by one probe-loss burst.
DEFAULT_LOSS_FRACTION = 0.2

#: Seed-tree label the plan generator derives its stream from.
FAULT_PLAN_LABEL = "fault-plan"


class FaultError(ReproError):
    """A fault plan or spec string was malformed."""


class InjectedFault(ReproError):
    """Raised inside a shard execution to simulate a worker crash when
    no real process boundary exists (the inline executor); forked pool
    workers ``os._exit`` instead, surfacing as ``BrokenProcessPool``."""


class FaultKind(Enum):
    """What a scripted fault does."""

    WORKER_CRASH = "worker_crash"   # kill the pool worker mid-shard
    SHARD_HANG = "shard_hang"       # stall a shard past the timeout
    PROBE_LOSS = "probe_loss"       # blank a prefix block for a round
    LINK_FLAP = "link_flap"         # fail + restore a link between rounds

    def __str__(self) -> str:
        return self.value


#: Execution faults must be survived without changing results;
#: environment faults change results deterministically.
EXECUTION_FAULTS = (FaultKind.WORKER_CRASH, FaultKind.SHARD_HANG)


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    ``slot`` addresses the target abstractly: the shard for execution
    faults (``slot % shard_count``), the first prefix of the loss
    block for ``PROBE_LOSS`` (``slot % len(prefixes)``), the link for
    ``LINK_FLAP`` (``slot % num_links`` into the sorted link list).
    ``fraction`` sizes a loss burst; ``hang_seconds`` sizes a hang.
    """

    kind: FaultKind
    round_index: int
    slot: int = 0
    fraction: float = DEFAULT_LOSS_FRACTION
    hang_seconds: float = DEFAULT_HANG_SECONDS

    def describe(self) -> str:
        return "%s@round%d/slot%d" % (self.kind, self.round_index, self.slot)


@dataclass(frozen=True)
class FaultDirective:
    """What one shard execution is told to suffer — the picklable
    per-submission payload shipped to the worker alongside the spec.

    ``lossy_prefixes`` is an environment fault and therefore survives
    retries; ``crash``/``hang_seconds`` are execution faults and are
    stripped before any retry or fallback (see
    :meth:`without_execution_faults`), so recovery always terminates.
    """

    crash: bool = False
    hang_seconds: float = 0.0
    lossy_prefixes: frozenset = frozenset()

    def without_execution_faults(self) -> "FaultDirective":
        return replace(self, crash=False, hang_seconds=0.0)

    @property
    def has_execution_fault(self) -> bool:
        return self.crash or self.hang_seconds > 0.0

    def __bool__(self) -> bool:
        return self.has_execution_fault or bool(self.lossy_prefixes)


def parse_fault_spec(text: str) -> Dict[str, int]:
    """Parse a ``--fault-plan`` spec string into event counts.

    The grammar is ``name=count[,name=count...]`` with names ``crash``,
    ``hang``, ``loss``, ``flap`` — e.g. ``"crash=2,loss=1"`` scripts
    two worker crashes and one probe-loss burst.  Counts must be
    non-negative integers.
    """
    counts = {"crash": 0, "hang": 0, "loss": 0, "flap": 0}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in counts:
            raise FaultError(
                "unknown fault kind %r in spec %r (expected "
                "crash/hang/loss/flap)" % (name, text)
            )
        try:
            count = int(value.strip())
        except ValueError:
            raise FaultError(
                "bad count %r for fault %r in spec %r"
                % (value.strip(), name, text)
            ) from None
        if count < 0:
            raise FaultError("negative count for fault %r" % name)
        counts[name] += count
    return counts


@dataclass(frozen=True)
class FaultPlan:
    """An immutable script of faults for one experiment run.

    Build one explicitly (tests), from a seed
    (:meth:`from_seed`), or from a CLI spec string (:meth:`from_spec`).
    An empty plan is falsy, so ``if self.fault_plan:`` guards every
    injection site at zero cost when faults are disabled.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- construction -------------------------------------------------

    @classmethod
    def from_seed(
        cls,
        seed: int,
        rounds: int = 9,
        worker_crashes: int = 0,
        shard_hangs: int = 0,
        probe_loss_bursts: int = 0,
        link_flaps: int = 0,
        hang_seconds: float = DEFAULT_HANG_SECONDS,
        loss_fraction: float = DEFAULT_LOSS_FRACTION,
    ) -> "FaultPlan":
        """Script the requested number of each fault kind, drawing
        rounds and slots deterministically from *seed*.

        The stream derives from ``derive_seed(seed, "fault-plan")``,
        a sibling of every other consumer under the experiment seed,
        so adding faults never perturbs probe or delay streams.
        """
        if rounds < 1:
            raise FaultError("rounds must be >= 1")
        rng = random.Random(derive_seed(seed, FAULT_PLAN_LABEL))
        events = []
        for kind, count in (
            (FaultKind.WORKER_CRASH, worker_crashes),
            (FaultKind.SHARD_HANG, shard_hangs),
            (FaultKind.PROBE_LOSS, probe_loss_bursts),
            (FaultKind.LINK_FLAP, link_flaps),
        ):
            for _ in range(count):
                events.append(FaultEvent(
                    kind=kind,
                    round_index=rng.randrange(rounds),
                    slot=rng.randrange(1 << 16),
                    fraction=loss_fraction,
                    hang_seconds=hang_seconds,
                ))
        return cls(events=tuple(events))

    @classmethod
    def from_spec(
        cls,
        spec: str,
        seed: int,
        rounds: int = 9,
        hang_seconds: float = DEFAULT_HANG_SECONDS,
        loss_fraction: float = DEFAULT_LOSS_FRACTION,
    ) -> "FaultPlan":
        """Build a plan from a CLI spec string (see
        :func:`parse_fault_spec`) and the experiment seed."""
        counts = parse_fault_spec(spec)
        return cls.from_seed(
            seed,
            rounds=rounds,
            worker_crashes=counts["crash"],
            shard_hangs=counts["hang"],
            probe_loss_bursts=counts["loss"],
            link_flaps=counts["flap"],
            hang_seconds=hang_seconds,
            loss_fraction=loss_fraction,
        )

    # -- queries ------------------------------------------------------

    def execution_fault(
        self, round_index: int, shard_id: int, shard_count: int
    ) -> Optional[FaultEvent]:
        """The crash/hang scripted for this (round, shard), if any.

        ``slot % shard_count`` maps the abstract slot onto the round's
        actual shard list, so the plan is valid at any worker count.
        """
        if shard_count < 1:
            return None
        for event in self.events:
            if (
                event.kind in EXECUTION_FAULTS
                and event.round_index == round_index
                and event.slot % shard_count == shard_id
            ):
                return event
        return None

    def lossy_prefixes(
        self, round_index: int, prefixes: Sequence
    ) -> frozenset:
        """The prefixes blanked by this round's loss bursts (empty
        frozenset when none): each burst blanks a contiguous block of
        ``ceil(fraction * len(prefixes))`` prefixes starting at
        ``slot % len(prefixes)``, wrapping."""
        if not prefixes:
            return frozenset()
        lossy = set()
        total = len(prefixes)
        for event in self.events:
            if (
                event.kind is not FaultKind.PROBE_LOSS
                or event.round_index != round_index
            ):
                continue
            block = max(1, min(total, math.ceil(total * event.fraction)))
            start = event.slot % total
            for offset in range(block):
                lossy.add(prefixes[(start + offset) % total])
        return frozenset(lossy)

    def flaps_after(self, round_index: int) -> Tuple[FaultEvent, ...]:
        """The link flaps scripted to fire after *round_index*'s
        probing (alongside the scheduled outages)."""
        return tuple(
            event for event in self.events
            if event.kind is FaultKind.LINK_FLAP
            and event.round_index == round_index
        )

    def counts(self) -> Dict[str, int]:
        """Event count per fault kind (report / logging)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[str(event.kind)] = out.get(str(event.kind), 0) + 1
        return out
