"""Table 1: inference results by prefix and by origin AS.

The AS columns intentionally sum to more than 100%: an AS appears in
every category any of its prefixes landed in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from .classify import (
    ExperimentInference,
    InferenceCategory,
    TABLE1_ORDER,
)


@dataclass
class Table1Row:
    category: InferenceCategory
    prefixes: int
    prefix_share: float
    ases: int
    as_share: float


@dataclass
class Table1:
    """One experiment's Table 1."""

    experiment: str
    rows: List[Table1Row] = field(default_factory=list)
    total_prefixes: int = 0
    total_ases: int = 0
    excluded_loss_prefixes: int = 0

    def row(self, category: InferenceCategory) -> Table1Row:
        for row in self.rows:
            if row.category is category:
                return row
        raise KeyError(category)

    def render(self) -> str:
        lines = [
            "Table 1 (%s): results for tested prefixes" % self.experiment,
            "%-28s %9s %7s %8s %7s"
            % ("Inference", "Prefixes", "%", "ASes", "%"),
        ]
        for row in self.rows:
            lines.append(
                "%-28s %9d %6.1f%% %8d %6.1f%%"
                % (
                    row.category.value,
                    row.prefixes,
                    row.prefix_share * 100.0,
                    row.ases,
                    row.as_share * 100.0,
                )
            )
        lines.append(
            "%-28s %9d %7s %8d"
            % ("Total:", self.total_prefixes, "", self.total_ases)
        )
        lines.append(
            "(%d prefixes excluded for packet loss)"
            % self.excluded_loss_prefixes
        )
        return "\n".join(lines)


def build_table1(inference: ExperimentInference) -> Table1:
    """Aggregate one experiment's classifications into Table 1."""
    characterized = inference.characterized()
    total_prefixes = len(characterized)
    as_categories: Dict[int, Set[InferenceCategory]] = {}
    prefix_counts: Dict[InferenceCategory, int] = {
        category: 0 for category in TABLE1_ORDER
    }
    for item in characterized:
        prefix_counts[item.category] += 1
        as_categories.setdefault(item.origin_asn, set()).add(item.category)
    total_ases = len(as_categories)

    table = Table1(
        experiment=inference.experiment,
        total_prefixes=total_prefixes,
        total_ases=total_ases,
        excluded_loss_prefixes=sum(
            1
            for item in inference.inferences.values()
            if not item.characterized
        ),
    )
    for category in TABLE1_ORDER:
        as_count = sum(
            1
            for categories in as_categories.values()
            if category in categories
        )
        table.rows.append(
            Table1Row(
                category=category,
                prefixes=prefix_counts[category],
                prefix_share=(
                    prefix_counts[category] / total_prefixes
                    if total_prefixes
                    else 0.0
                ),
                ases=as_count,
                as_share=as_count / total_ases if total_ases else 0.0,
            )
        )
    return table
