"""Validation analyses (§4.1).

Table 3 compares prefix-level inferences with what the same ASes
exported to public BGP collectors: an AS whose systems always replied
over R&E should only show the R&E origin in its public view.  The
paper found 3 of 25 ASes incongruent — and operator contact showed at
least two of those exported a commodity VRF to the collector while
genuinely preferring R&E, i.e. the *inference* was right and the
public view misleading.  The simulation reproduces that mechanism with
VRF-split feeders.

§4.1.2's operator ground truth is reproduced against the generator's
policy oracle: "contacting an operator" reads the member's true policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..experiment.records import ExperimentResult
from ..rng import SeedTree
from ..topology.re_config import EgressClass, PrefixKind
from .classify import ExperimentInference, InferenceCategory

_TABLE3_CATEGORIES = (
    InferenceCategory.ALWAYS_RE,
    InferenceCategory.ALWAYS_COMMODITY,
    InferenceCategory.SWITCH_TO_RE,
)


@dataclass
class Table3Entry:
    """One collector-feeding AS in the congruence check."""

    asn: int
    inference: InferenceCategory
    observed_origins: Tuple[int, ...]
    congruent: bool
    vrf_split: bool
    note: str = ""


@dataclass
class Table3:
    """The public-BGP-view congruence table."""

    entries: List[Table3Entry] = field(default_factory=list)
    excluded_no_majority: int = 0
    excluded_other_category: int = 0

    def counts(self) -> Dict[InferenceCategory, Tuple[int, int]]:
        """category -> (congruent, incongruent)."""
        out: Dict[InferenceCategory, Tuple[int, int]] = {}
        for category in _TABLE3_CATEGORIES:
            congruent = sum(
                1
                for e in self.entries
                if e.inference is category and e.congruent
            )
            incongruent = sum(
                1
                for e in self.entries
                if e.inference is category and not e.congruent
            )
            out[category] = (congruent, incongruent)
        return out

    @property
    def total(self) -> int:
        return len(self.entries)

    @property
    def total_congruent(self) -> int:
        return sum(1 for e in self.entries if e.congruent)

    @property
    def incongruent_but_correct(self) -> int:
        """Incongruent entries whose underlying policy matched the
        inference (the VRF-split cases)."""
        return sum(
            1 for e in self.entries if not e.congruent and e.vrf_split
        )

    def render(self) -> str:
        lines = [
            "Table 3: policy inferences vs public BGP views",
            "%-22s %10s %12s %6s"
            % ("Inference", "Congruent", "Incongruent", "Total"),
        ]
        for category, (congruent, incongruent) in self.counts().items():
            lines.append(
                "%-22s %10d %12d %6d"
                % (category.value, congruent, incongruent,
                   congruent + incongruent)
            )
        lines.append(
            "%-22s %10d %12d %6d"
            % ("Total", self.total_congruent,
               self.total - self.total_congruent, self.total)
        )
        lines.append(
            "(%d incongruent ASes exported a commodity VRF; their "
            "inference was correct)" % self.incongruent_but_correct
        )
        if self.excluded_no_majority:
            lines.append(
                "(%d AS excluded: no most-frequent inference)"
                % self.excluded_no_majority
            )
        return "\n".join(lines)


def _most_frequent_inference(
    inferences: List[InferenceCategory],
) -> Optional[InferenceCategory]:
    counts: Dict[InferenceCategory, int] = {}
    for category in inferences:
        counts[category] = counts.get(category, 0) + 1
    if not counts:
        return None
    best = max(counts.values())
    winners = [c for c, n in counts.items() if n == best]
    if len(winners) != 1:
        return None  # tie: no most-frequent inference
    return winners[0]


def build_table3(
    ecosystem,
    inference: ExperimentInference,
    result: ExperimentResult,
) -> Table3:
    """Check inference congruence against member feeders' public views."""
    table = Table3()
    vrf_split = set(ecosystem.feeders.vrf_split_feeders)
    re_origin = result.re_origin
    commodity_origin = result.commodity_origin

    for feeder in ecosystem.feeders.member_feeders:
        categories = [
            item.category
            for item in inference.inferences.values()
            if item.origin_asn == feeder and item.characterized
        ]
        majority = _most_frequent_inference(categories)
        if majority is None:
            table.excluded_no_majority += 1
            continue
        if majority not in _TABLE3_CATEGORIES:
            table.excluded_other_category += 1
            continue
        observations = result.feeder_views.get(feeder, [])
        origins = tuple(
            sorted(
                {
                    obs.origin_asn
                    for obs in observations
                    if obs.origin_asn is not None
                }
            )
        )
        if majority is InferenceCategory.ALWAYS_RE:
            congruent = origins == (re_origin,) or origins == tuple(
                sorted({re_origin})
            )
        elif majority is InferenceCategory.ALWAYS_COMMODITY:
            congruent = origins == (commodity_origin,)
        else:  # SWITCH_TO_RE: the view should show both origins in turn
            congruent = set(origins) >= {re_origin, commodity_origin}
        note = ""
        if not congruent and feeder in vrf_split:
            note = (
                "exports commodity VRF to collector; policy prefers R&E"
            )
        table.entries.append(
            Table3Entry(
                asn=feeder,
                inference=majority,
                observed_origins=origins,
                congruent=congruent,
                vrf_split=feeder in vrf_split,
                note=note,
            )
        )
    return table


# ----- §4.1.2 operator ground truth -----------------------------------------


@dataclass
class GroundTruthEntry:
    asn: int
    inference: Optional[InferenceCategory]
    true_class: EgressClass
    responded: bool
    confirmed: bool
    note: str = ""


@dataclass
class GroundTruthReport:
    entries: List[GroundTruthEntry] = field(default_factory=list)

    @property
    def contacted(self) -> int:
        return len(self.entries)

    @property
    def responses(self) -> int:
        return sum(1 for e in self.entries if e.responded)

    @property
    def confirmed(self) -> int:
        return sum(1 for e in self.entries if e.responded and e.confirmed)

    def render(self) -> str:
        lines = [
            "Operator ground truth: contacted %d ASes, %d responded, "
            "%d confirmed" % (self.contacted, self.responses,
                              self.confirmed)
        ]
        for entry in self.entries:
            if not entry.responded:
                lines.append("  AS %d: no response" % entry.asn)
                continue
            lines.append(
                "  AS %d: inference=%s truth=%s %s%s"
                % (
                    entry.asn,
                    entry.inference.value if entry.inference else "-",
                    entry.true_class.value,
                    "CONFIRMED" if entry.confirmed else "REFUTED",
                    (" — " + entry.note) if entry.note else "",
                )
            )
        return "\n".join(lines)


def expected_category(truth) -> InferenceCategory:
    """The inference a member's true policy should produce, given the
    prepend ordering (§3.3)."""
    if truth.egress_class is EgressClass.RE_PREFER:
        return InferenceCategory.ALWAYS_RE
    if truth.egress_class is EgressClass.COMMODITY_PREFER:
        if truth.has_commodity_egress:
            return InferenceCategory.ALWAYS_COMMODITY
        return InferenceCategory.ALWAYS_RE
    # EQUAL: with a commodity egress the prepend sweep forces a single
    # commodity->R&E transition; without one only R&E routes exist.
    if truth.has_commodity_egress:
        return InferenceCategory.SWITCH_TO_RE
    return InferenceCategory.ALWAYS_RE


def operator_ground_truth(
    ecosystem,
    inference: ExperimentInference,
    contact: int = 10,
    respond: int = 8,
    seed: int = 0,
) -> GroundTruthReport:
    """Reproduce §4.1.2: contact operators across the inference
    spectrum and compare their (oracle) policies with our inferences.

    The selection spans the spectrum as the paper's did: equal-localpref
    ASes, a mixed prefix (the router-interconnect case), always-R&E and
    always-commodity ASes.
    """
    rng = SeedTree(seed).child("ground-truth").rng()
    by_as = inference.by_as()
    report = GroundTruthReport()

    def majority(asn: int) -> Optional[InferenceCategory]:
        cats = [i.category for i in by_as.get(asn, []) if i.characterized]
        return _most_frequent_inference(cats)

    pools: Dict[str, List[int]] = {"equal": [], "mixed": [], "re": [],
                                   "commodity": []}
    for asn, items in sorted(by_as.items()):
        truth = ecosystem.members.get(asn)
        if truth is None or truth.behind_transit is not None:
            continue
        cats = {i.category for i in items}
        if InferenceCategory.MIXED in cats:
            pools["mixed"].append(asn)
        category = majority(asn)
        if category is InferenceCategory.SWITCH_TO_RE:
            pools["equal"].append(asn)
        elif category is InferenceCategory.ALWAYS_RE:
            pools["re"].append(asn)
        elif category is InferenceCategory.ALWAYS_COMMODITY:
            pools["commodity"].append(asn)

    quota = [("equal", 2), ("mixed", 1), ("commodity", 2), ("re", contact)]
    chosen: List[int] = []
    for pool_name, want in quota:
        pool = [a for a in pools[pool_name] if a not in chosen]
        rng.shuffle(pool)
        chosen.extend(pool[: min(want, max(0, contact - len(chosen)))])
    chosen = chosen[:contact]
    responders = set(rng.sample(chosen, min(respond, len(chosen))))

    for asn in chosen:
        truth = ecosystem.members[asn]
        category = majority(asn)
        if asn not in responders:
            report.entries.append(
                GroundTruthEntry(
                    asn=asn, inference=category,
                    true_class=truth.egress_class,
                    responded=False, confirmed=False,
                )
            )
            continue
        note = ""
        has_mixed = any(
            i.category is InferenceCategory.MIXED
            for i in by_as.get(asn, [])
        )
        if has_mixed:
            note = (
                "one probed address is an interconnect-router address "
                "without an R&E route; other systems use R&E"
            )
        confirmed = (
            category is None or category is expected_category(truth)
            or has_mixed
        )
        report.entries.append(
            GroundTruthEntry(
                asn=asn, inference=category,
                true_class=truth.egress_class,
                responded=True, confirmed=confirmed, note=note,
            )
        )
    return report


def truth_accuracy(ecosystem, inference: ExperimentInference) -> Dict[str, float]:
    """Overall inference accuracy against the ground-truth oracle, per
    expected category (a whole-population version of §4.1.2)."""
    correct: Dict[str, int] = {}
    totals: Dict[str, int] = {}
    for item in inference.characterized():
        truth = ecosystem.members.get(item.origin_asn)
        plan = ecosystem.prefix_plans.get(item.prefix)
        if truth is None or plan is None or truth.behind_transit is not None:
            continue
        if plan.kind in (PrefixKind.MIXED, PrefixKind.INTERCONNECT):
            continue  # attachment, not policy, drives these
        expected = expected_category(truth)
        key = expected.value
        totals[key] = totals.get(key, 0) + 1
        if item.category is expected:
            correct[key] = correct.get(key, 0) + 1
    return {
        key: correct.get(key, 0) / total
        for key, total in totals.items()
        if total
    }
