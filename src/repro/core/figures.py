"""Plain-text rendering of the paper's figures.

The library is dependency-free, so figures render as terminal plots:
Figure 3 as a cumulative step curve with probing windows marked,
Figure 8 as aligned CDF curves, and Figure 5 as a shaded region table
(the text analogue of the paper's choropleth maps).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..collectors.churn import ChurnReport
from .ripe import Figure5
from .switch_cdf import Figure8

_SHADES = " .:-=+*#%@"


def _shade(fraction: float) -> str:
    index = int(round(fraction * (len(_SHADES) - 1)))
    return _SHADES[max(0, min(len(_SHADES) - 1, index))]


def render_churn_figure(
    report: ChurnReport,
    round_times: Sequence[Tuple[float, float]] = (),
    width: int = 72,
    height: int = 12,
) -> str:
    """Figure 3: cumulative update curve with probing windows (grey
    bars in the paper; ``|`` columns here)."""
    if not report.series:
        return "(no update activity)"
    start = report.re_phase.start
    end = report.commodity_phase.end
    span = max(1.0, end - start)
    top = max(1, report.series[-1][1])

    def column_of(when: float) -> int:
        return int((when - start) / span * (width - 1))

    # Sample the cumulative count per column.
    counts = [0] * width
    cursor = 0
    for when, value in report.series:
        column = max(0, min(width - 1, column_of(when)))
        counts[column] = max(counts[column], value)
    for column in range(1, width):
        counts[column] = max(counts[column], counts[column - 1])

    window_columns = set()
    for window_start, window_end in round_times:
        for column in range(
            column_of(window_start), column_of(window_end) + 1
        ):
            if 0 <= column < width:
                window_columns.add(column)

    boundary_column = column_of(report.commodity_phase.start)
    rows: List[str] = []
    for row in range(height, 0, -1):
        threshold = top * row / height
        line = []
        for column in range(width):
            if counts[column] >= threshold:
                line.append("#")
            elif column in window_columns:
                line.append("|")
            elif column == boundary_column:
                line.append(":")
            else:
                line.append(" ")
        rows.append("".join(line))
    axis = "-" * width
    legend = (
        "cumulative updates (max %d); '|' probing windows, ':' phase "
        "boundary" % top
    )
    label = (
        "R&E prepends phase: %d | commodity prepends phase: %d"
        % (report.re_phase.updates, report.commodity_phase.updates)
    )
    return "\n".join(rows + [axis, legend, label])


def render_switch_cdf_figure(figure: Figure8, width: int = 60,
                             height: int = 10) -> str:
    """Figure 8: the two populations' CDFs on one grid (``N`` =
    Peer-NREN, ``P`` = Participant, ``*`` both)."""
    configs = figure.configs
    nren = dict(figure.peer_nren.cdf(configs))
    participant = dict(figure.participant.cdf(configs))
    columns = len(configs)
    grid = [[" "] * columns for _ in range(height)]
    for column, config in enumerate(configs):
        for series, mark in ((nren, "N"), (participant, "P")):
            row = height - 1 - int(round(series[config] * (height - 1)))
            current = grid[row][column]
            grid[row][column] = "*" if current not in (" ", mark) else mark
    cell = max(4, width // columns)
    lines = []
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(
            "%4.0f%% |%s" % (
                100 * fraction,
                "".join(mark.center(cell) for mark in row),
            )
        )
    lines.append("      +" + "-" * (cell * columns))
    lines.append(
        "       " + "".join(config.center(cell) for config in configs)
    )
    lines.append(
        "       N = Peer-NREN (n=%d), P = Participant (n=%d), * = both"
        % (figure.peer_nren.total, figure.participant.total)
    )
    return "\n".join(lines)


def render_region_map(figure: Figure5, us_states: bool = False) -> str:
    """Figure 5 as a shaded table: dark (high share, '@') to light
    ('.'), the text analogue of the green-to-red map."""
    stats = (
        figure.eligible_states() if us_states
        else figure.eligible_countries()
    )
    if not stats:
        return "(no regions with enough geolocated ASes)"
    title = "U.S. states" if us_states else "countries"
    lines = ["Figure 5 (%s): share of ASes reached over R&E" % title]
    for stat in stats:
        bar = _shade(stat.share) * max(1, int(round(stat.share * 20)))
        lines.append(
            "  %-3s %5.1f%% %-20s (%d/%d ASes)"
            % (stat.region, 100 * stat.share, bar, stat.re_ases,
               stat.total_ases)
        )
    return "\n".join(lines)
