"""High-level orchestration: run everything and render the report.

:func:`reproduce_paper` is the one-call entry point used by the
examples and benchmarks: build the ecosystem, run both experiments
with shared seeds, classify, and produce every table and figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..bgp.arraytable import use_decision_backend
from ..collectors.churn import ChurnReport, build_churn_report
from ..collectors.collector import Collector
from ..experiment.campaign import run_experiment_pair
from ..experiment.records import ExperimentResult
from ..topology.re_config import REEcosystemConfig
from ..topology.re_ecosystem import Ecosystem, build_ecosystem
from .aggregate import Table1, build_table1
from .classify import ExperimentInference, classify_experiment, origin_map
from .compare import Table2, build_table2
from .prepend_analysis import Table4, build_table4
from .ripe import Figure5, build_figure5
from .switch_cdf import Figure8, build_figure8
from .validation import (
    GroundTruthReport,
    Table3,
    build_table3,
    operator_ground_truth,
)


@dataclass
class PaperReproduction:
    """Everything the evaluation section reports."""

    ecosystem: Ecosystem
    surf_result: ExperimentResult
    internet2_result: ExperimentResult
    surf_inference: ExperimentInference
    internet2_inference: ExperimentInference
    table1_surf: Table1
    table1_internet2: Table1
    table2: Table2
    table3: Table3
    table4: Table4
    figure5: Figure5
    figure8_surf: Figure8
    figure8_internet2: Figure8
    churn_internet2: ChurnReport
    ground_truth: GroundTruthReport

    def render(self) -> str:
        sections = [
            self.table1_surf.render(),
            self.table1_internet2.render(),
            self.table2.render(),
            self.table3.render(),
            self.table4.render(),
            self.figure5.render(),
            "Figure 3 (Internet2 churn):",
            *("  " + row for row in self.churn_internet2.summary_rows()),
            self.figure8_surf.render(),
            self.figure8_internet2.render(),
            self.ground_truth.render(),
        ]
        return "\n\n".join(sections)


def experiment_collector(ecosystem: Ecosystem, result: ExperimentResult) -> Collector:
    """A collector with every RouteViews/RIS-analogue session, fed the
    experiment's update log."""
    collector = Collector(
        "routeviews+ris", ecosystem.feeders.all_sessions()
    )
    collector.ingest(result.update_log)
    return collector


def reproduce_paper(
    config: Optional[REEcosystemConfig] = None,
    seed: int = 0,
    ecosystem: Optional[Ecosystem] = None,
    workers: int = 1,
    shard_size: Optional[int] = None,
    fault_plan=None,
    shard_timeout: Optional[float] = None,
    decision_backend: str = "object",
) -> PaperReproduction:
    """Run the full reproduction at the given scale and seed.

    ``workers`` / ``shard_size`` parallelise the probing rounds (see
    :mod:`repro.experiment.parallel`); the report is byte-identical at
    every worker count.  ``fault_plan`` injects scripted faults
    (:mod:`repro.faults`): execution faults are recovered without
    changing the report, environment faults change it
    deterministically; ``shard_timeout`` bounds each shard execution.
    ``decision_backend`` picks the route-selection implementation
    (:mod:`repro.bgp.arraytable`); the report is byte-identical under
    both, which the differential suite pins.
    """
    with use_decision_backend(decision_backend):
        return _reproduce_paper(
            config, seed, ecosystem, workers, shard_size, fault_plan,
            shard_timeout, decision_backend,
        )


def _reproduce_paper(
    config: Optional[REEcosystemConfig],
    seed: int,
    ecosystem: Optional[Ecosystem],
    workers: int,
    shard_size: Optional[int],
    fault_plan,
    shard_timeout: Optional[float],
    decision_backend: str,
) -> PaperReproduction:
    if ecosystem is None:
        ecosystem = build_ecosystem(config or REEcosystemConfig(), seed=seed)
    surf_result, internet2_result = run_experiment_pair(
        ecosystem, seed=seed, workers=workers, shard_size=shard_size,
        fault_plan=fault_plan, shard_timeout=shard_timeout,
        decision_backend=decision_backend,
    )
    origins = origin_map(ecosystem)
    surf_inference = classify_experiment(surf_result, origins)
    internet2_inference = classify_experiment(internet2_result, origins)

    collector = experiment_collector(ecosystem, internet2_result)

    return PaperReproduction(
        ecosystem=ecosystem,
        surf_result=surf_result,
        internet2_result=internet2_result,
        surf_inference=surf_inference,
        internet2_inference=internet2_inference,
        table1_surf=build_table1(surf_inference),
        table1_internet2=build_table1(internet2_inference),
        table2=build_table2(surf_inference, internet2_inference, ecosystem),
        table3=build_table3(ecosystem, internet2_inference,
                            internet2_result),
        table4=build_table4(ecosystem, internet2_inference),
        figure5=build_figure5(ecosystem),
        figure8_surf=build_figure8(ecosystem, surf_inference,
                                   internet2_inference, "surf"),
        figure8_internet2=build_figure8(ecosystem, surf_inference,
                                        internet2_inference, "internet2"),
        churn_internet2=build_churn_report(internet2_result, collector),
        ground_truth=operator_ground_truth(ecosystem, internet2_inference,
                                           seed=seed),
    )
