"""The paper's contribution: route-preference inference and analyses.

- :mod:`repro.core.classify` — per-prefix inference from probing rounds;
- :mod:`repro.core.aggregate` — Table 1 (prefix and AS counts);
- :mod:`repro.core.compare` — Table 2 (SURF vs Internet2, NIKS effect);
- :mod:`repro.core.validation` — Table 3 (public-view congruence) and
  §4.1.2 operator ground truth;
- :mod:`repro.core.prepend_analysis` — Table 4 (prepending vs inference);
- :mod:`repro.core.ripe` — §4.3 / Figure 5 (equal-localpref selection);
- :mod:`repro.core.switch_cdf` — §B / Figure 8 (when ASes switched);
- :mod:`repro.core.age_model` — §A / Figure 7 (route-age interplay);
- :mod:`repro.core.report` — plain-text table rendering;
- :mod:`repro.core.sweep` — cross-seed campaign aggregation (mean/
  min/max and bootstrap CIs per category vs the paper's targets).
"""

from .classify import (
    InferenceCategory,
    PrefixInference,
    RoundSignal,
    classify_experiment,
    classify_prefix_rounds,
)
from .aggregate import Table1, build_table1
from .compare import Table2, build_table2
from .validation import (
    GroundTruthReport,
    Table3,
    build_table3,
    operator_ground_truth,
)
from .prepend_analysis import Table4, build_table4
from .ripe import Figure5, build_figure5
from .switch_cdf import Figure8, build_figure8
from .age_model import AgeModelCase, simulate_age_cases
from .survey import (
    AnnouncementSpec,
    PreferenceSurvey,
    SurveyCategory,
    infer_equal_localpref,
)
from .prediction import PredictionReport, build_prediction_report
from .sweep import CampaignSummary, build_campaign_summary

__all__ = [
    "CampaignSummary",
    "build_campaign_summary",
    "InferenceCategory",
    "PrefixInference",
    "RoundSignal",
    "classify_experiment",
    "classify_prefix_rounds",
    "Table1",
    "build_table1",
    "Table2",
    "build_table2",
    "Table3",
    "build_table3",
    "GroundTruthReport",
    "operator_ground_truth",
    "Table4",
    "build_table4",
    "Figure5",
    "build_figure5",
    "Figure8",
    "build_figure8",
    "AgeModelCase",
    "simulate_age_cases",
    "AnnouncementSpec",
    "PreferenceSurvey",
    "SurveyCategory",
    "infer_equal_localpref",
    "PredictionReport",
    "build_prediction_report",
]
