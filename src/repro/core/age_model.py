"""§A / Figure 7: the interplay of AS path length and route age.

Figure 7's state diagrams show, for a network holding equal-localpref
R&E and commodity routes, which route is selected at each prepend
configuration given the relative base path lengths (cases A-I) or when
the network ignores path length and keeps the oldest route (case J).

The simulation drives a real :class:`~repro.bgp.router.Router` through
the announcement sequence: the changed announcement's route is
re-installed (resetting its age) exactly as the experiment's
re-announcements did, so the age semantics come from the same code the
experiments run on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..bgp.attributes import ASPath
from ..bgp.policy import Rel, RoutingPolicy
from ..bgp.router import Router
from ..experiment.schedule import PREPEND_SEQUENCE, parse_prepend_config
from ..netutil import Prefix

_PREFIX = Prefix.parse("163.253.63.0/24")
_RE_NEIGHBOR = 64601
_COMMODITY_NEIGHBOR = 64602
_RE_ORIGIN = 11537
_COMMODITY_ORIGIN = 396955
_HOUR = 3600.0


@dataclass
class AgeModelCase:
    """One row of Figure 7."""

    label: str
    description: str
    selections: List[str] = field(default_factory=list)  # "re"/"commodity"
    configs: Tuple[str, ...] = PREPEND_SEQUENCE

    @property
    def switch_config(self) -> Optional[str]:
        """First configuration whose selection is R&E after commodity."""
        previous = None
        for config, selection in zip(self.configs, self.selections):
            if previous == "commodity" and selection == "re":
                return config
            previous = selection
        return None

    @property
    def transitions(self) -> int:
        return sum(
            1
            for a, b in zip(self.selections, self.selections[1:])
            if a != b
        )

    def render(self) -> str:
        marks = " ".join(
            "%s:%s" % (config, "R" if sel == "re" else "C")
            for config, sel in zip(self.configs, self.selections)
        )
        return "%-40s %s" % (self.description, marks)


def _re_path(base_length: int, prepends: int) -> ASPath:
    """An R&E-side path of the given base length plus origin prepends."""
    middle = tuple(range(64700, 64700 + base_length - 1))
    return ASPath(middle + (_RE_ORIGIN,) * (1 + prepends))


def _commodity_path(base_length: int, prepends: int) -> ASPath:
    middle = tuple(range(64800, 64800 + base_length - 1))
    return ASPath(middle + (_COMMODITY_ORIGIN,) * (1 + prepends))


def _simulate(
    re_base: int,
    commodity_base: int,
    path_length_sensitive: bool,
    re_older_at_start: bool,
    configs: Tuple[str, ...] = PREPEND_SEQUENCE,
) -> List[str]:
    """Drive one network through the announcement sequence and return
    its selected route type at each probing window."""
    policy = RoutingPolicy(
        localpref={_RE_NEIGHBOR: 100, _COMMODITY_NEIGHBOR: 100},
        path_length_sensitive=path_length_sensitive,
    )
    router = Router(64600, policy)
    parsed = [parse_prepend_config(config) for config in configs]

    # Pre-experiment state: the commodity route has been up for a long
    # time; the R&E route appears at the first configuration.  Case J's
    # second row flips the initial ages.
    now = 0.0
    commodity_age = -30 * 24 * _HOUR if not re_older_at_start else -1 * _HOUR
    router.receive(
        _COMMODITY_NEIGHBOR, Rel.PROVIDER, _PREFIX,
        _commodity_path(commodity_base, parsed[0][1]), commodity_age,
        tag="commodity",
    )
    re_age = now if not re_older_at_start else -60 * 24 * _HOUR
    router.receive(
        _RE_NEIGHBOR, Rel.PROVIDER, _PREFIX,
        _re_path(re_base, parsed[0][0]), re_age, tag="re",
    )

    selections: List[str] = []
    previous = parsed[0]
    for index, (re_p, comm_p) in enumerate(parsed):
        if index > 0:
            now += _HOUR
            if re_p != previous[0]:
                router.receive(
                    _RE_NEIGHBOR, Rel.PROVIDER, _PREFIX,
                    _re_path(re_base, re_p), now, tag="re",
                )
            if comm_p != previous[1]:
                router.receive(
                    _COMMODITY_NEIGHBOR, Rel.PROVIDER, _PREFIX,
                    _commodity_path(commodity_base, comm_p), now,
                    tag="commodity",
                )
        previous = (re_p, comm_p)
        best = router.best_route(_PREFIX)
        selections.append(best.tag)
    return selections


def simulate_age_cases(
    configs: Tuple[str, ...] = PREPEND_SEQUENCE,
) -> List[AgeModelCase]:
    """Reproduce Figure 7's cases A-J.

    Cases A-I vary the R&E route's base path length from 4 shorter to
    4 longer than the commodity route's; case J uses a path-length-
    insensitive network with both initial age orders.
    """
    cases: List[AgeModelCase] = []
    base = 6
    letters = "ABCDEFGHI"
    for index, delta in enumerate(range(-4, 5)):
        # delta = re_length - commodity_length
        if delta < 0:
            description = (
                "(%s) R&E path shorter by %d" % (letters[index], -delta)
            )
        elif delta == 0:
            description = "(%s) equal AS path lengths" % letters[index]
        else:
            description = (
                "(%s) R&E path longer by %d" % (letters[index], delta)
            )
        selections = _simulate(
            re_base=base + delta,
            commodity_base=base,
            path_length_sensitive=True,
            re_older_at_start=False,
            configs=configs,
        )
        cases.append(
            AgeModelCase(
                label=letters[index],
                description=description,
                selections=selections,
                configs=configs,
            )
        )
    cases.append(
        AgeModelCase(
            label="J1",
            description="(J) ignores path length, commodity older",
            selections=_simulate(
                re_base=base, commodity_base=base,
                path_length_sensitive=False, re_older_at_start=False,
                configs=configs,
            ),
            configs=configs,
        )
    )
    cases.append(
        AgeModelCase(
            label="J2",
            description="(J) ignores path length, R&E older",
            selections=_simulate(
                re_base=base, commodity_base=base,
                path_length_sensitive=False, re_older_at_start=True,
                configs=configs,
            ),
            configs=configs,
        )
    )
    return cases
