"""Table 4: does egress preference align with origin prepending? (§4.2)

For every tested prefix, the origin's prepending toward R&E vs
commodity neighbors — as visible in collected BGP routes — is compared
with the probing-based inference.  The paper's conclusion: relative
prepending is a signal but an unreliable one (50.7% of R>C prefixes
still always returned via R&E), and 9% of "no commodity observed"
prefixes used hidden commodity egress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..collectors.rib import PrependObservation, observe_origin_prepending
from ..netutil import Prefix
from .classify import ExperimentInference, InferenceCategory

#: Table 4's row order (Switch-to-commodity and oscillating prefixes are
#: too few to chart; the paper's table shows these four).
ROW_ORDER = (
    InferenceCategory.ALWAYS_RE,
    InferenceCategory.ALWAYS_COMMODITY,
    InferenceCategory.SWITCH_TO_RE,
    InferenceCategory.MIXED,
)

#: Column keys.
COL_EQUAL = "R=C"
COL_MORE_COMMODITY = "R<C"
COL_MORE_RE = "R>C"
COL_NO_COMMODITY = "no commodity"
COLUMN_ORDER = (COL_EQUAL, COL_MORE_COMMODITY, COL_MORE_RE,
                COL_NO_COMMODITY)


def prepend_column(observation: PrependObservation) -> str:
    """Classify one prefix's observed prepending into a Table 4 column."""
    if not observation.has_commodity:
        return COL_NO_COMMODITY
    if observation.re_prepends == observation.commodity_prepends:
        return COL_EQUAL
    if observation.re_prepends < observation.commodity_prepends:
        return COL_MORE_COMMODITY
    return COL_MORE_RE


@dataclass
class Table4:
    """Inference x prepending cross-tabulation."""

    cells: Dict[Tuple[InferenceCategory, str], int] = field(
        default_factory=dict
    )
    other_categories: int = 0

    def cell(self, category: InferenceCategory, column: str) -> int:
        return self.cells.get((category, column), 0)

    def column_total(self, column: str) -> int:
        return sum(
            count
            for (_, col), count in self.cells.items()
            if col == column
        )

    def column_share(self, category: InferenceCategory, column: str) -> float:
        total = self.column_total(column)
        return self.cell(category, column) / total if total else 0.0

    @property
    def total(self) -> int:
        return sum(self.cells.values())

    def render(self) -> str:
        lines = [
            "Table 4: origin prepending vs route preference inference",
            "%-24s %10s %10s %10s %14s"
            % (("Inference",) + COLUMN_ORDER),
        ]
        for category in ROW_ORDER:
            counts = "  ".join(
                "%6d" % self.cell(category, column)
                for column in COLUMN_ORDER
            )
            shares = "  ".join(
                "%5.1f%%" % (100.0 * self.column_share(category, column))
                for column in COLUMN_ORDER
            )
            lines.append("%-24s  %s" % (category.value, counts))
            lines.append("%-24s  %s" % ("", shares))
        totals = "  ".join(
            "%6d" % self.column_total(column) for column in COLUMN_ORDER
        )
        lines.append("%-24s  %s" % ("Total", totals))
        return "\n".join(lines)


def build_table4(
    ecosystem,
    inference: ExperimentInference,
    observations: Optional[Dict[Prefix, PrependObservation]] = None,
) -> Table4:
    """Cross-tabulate prepending observations with inferences.

    *observations* defaults to reconstructing origin prepending from
    the collector-visible announcements (see
    :func:`repro.collectors.rib.observe_origin_prepending`).
    """
    if observations is None:
        observations = observe_origin_prepending(ecosystem)
    table = Table4()
    for item in inference.characterized():
        observation = observations.get(item.prefix)
        if observation is None:
            continue
        if item.category not in ROW_ORDER:
            table.other_categories += 1
            continue
        column = prepend_column(observation)
        key = (item.category, column)
        table.cells[key] = table.cells.get(key, 0) + 1
    return table
