"""§B / Figure 8: when did ASes switch to R&E routes?

The analysis selects prefixes that switched from commodity to R&E in
*both* experiments, takes the first configuration at which each AS
switched (so multi-prefix ASes that switch in unison count once), and
builds per-population CDFs over the configuration sequence for the
Participant (U.S. domestic) and Peer-NREN (international) classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..experiment.schedule import PREPEND_SEQUENCE
from ..topology.graph import MemberSide
from .classify import ExperimentInference, InferenceCategory


@dataclass
class SwitchCDF:
    """CDF of first-switch configurations for one population."""

    side: MemberSide
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def cdf(self, configs: Tuple[str, ...] = PREPEND_SEQUENCE) -> List[Tuple[str, float]]:
        total = self.total
        cumulative = 0
        out: List[Tuple[str, float]] = []
        for config in configs:
            cumulative += self.counts.get(config, 0)
            out.append((config, cumulative / total if total else 0.0))
        return out

    def median_config(
        self, configs: Tuple[str, ...] = PREPEND_SEQUENCE
    ) -> Optional[str]:
        for config, share in self.cdf(configs):
            if share >= 0.5:
                return config
        return None


@dataclass
class Figure8:
    """Per-experiment switch CDFs for both populations."""

    experiment: str
    participant: SwitchCDF = field(
        default_factory=lambda: SwitchCDF(MemberSide.PARTICIPANT)
    )
    peer_nren: SwitchCDF = field(
        default_factory=lambda: SwitchCDF(MemberSide.PEER_NREN)
    )
    configs: Tuple[str, ...] = PREPEND_SEQUENCE

    def render(self) -> str:
        lines = [
            "Figure 8 (%s): CDF of first switch to R&E" % self.experiment,
            "%-8s %12s %12s" % ("config", "Peer-NREN", "Participant"),
        ]
        nren_cdf = dict(self.peer_nren.cdf(self.configs))
        part_cdf = dict(self.participant.cdf(self.configs))
        for config in self.configs:
            lines.append(
                "%-8s %11.1f%% %11.1f%%"
                % (config, 100.0 * nren_cdf[config],
                   100.0 * part_cdf[config])
            )
        lines.append(
            "N: Peer-NREN=%d Participant=%d"
            % (self.peer_nren.total, self.participant.total)
        )
        return "\n".join(lines)


def switched_in_both(
    surf: ExperimentInference, internet2: ExperimentInference
) -> List:
    """Prefixes classified switch-to-R&E in both experiments (the
    paper's 859)."""
    out = []
    for prefix, a in surf.inferences.items():
        b = internet2.inferences.get(prefix)
        if (
            b is not None
            and a.category is InferenceCategory.SWITCH_TO_RE
            and b.category is InferenceCategory.SWITCH_TO_RE
        ):
            out.append(prefix)
    return out


def build_figure8(
    ecosystem,
    surf: ExperimentInference,
    internet2: ExperimentInference,
    experiment: str,
) -> Figure8:
    """Build the switch CDF for one experiment over the prefixes that
    switched in both."""
    chosen = (surf if experiment == "surf" else internet2)
    figure = Figure8(experiment=experiment)
    # First switch configuration per AS, over the shared switch set.
    first_switch: Dict[Tuple[int, MemberSide], int] = {}
    for prefix in switched_in_both(surf, internet2):
        item = chosen.inferences[prefix]
        if item.switch_round is None:
            continue
        plan = ecosystem.prefix_plans.get(prefix)
        side = plan.side if plan is not None else MemberSide.PEER_NREN
        key = (item.origin_asn, side)
        if key not in first_switch or item.switch_round < first_switch[key]:
            first_switch[key] = item.switch_round
    for (asn, side), round_index in first_switch.items():
        config = figure.configs[round_index]
        cdf = (
            figure.participant
            if side is MemberSide.PARTICIPANT
            else figure.peer_nren
        )
        cdf.counts[config] = cdf.counts.get(config, 0) + 1
    return figure


def population_lag(figure: Figure8) -> float:
    """Mean switch-round difference (Participant minus Peer-NREN) — the
    §B observation that U.S. domestic ASes switched one configuration
    later in the SURF experiment."""
    def mean_round(cdf: SwitchCDF) -> Optional[float]:
        total = cdf.total
        if not total:
            return None
        indexed = {c: i for i, c in enumerate(figure.configs)}
        return sum(
            indexed[config] * count for config, count in cdf.counts.items()
        ) / total

    participant = mean_round(figure.participant)
    peer_nren = mean_round(figure.peer_nren)
    if participant is None or peer_nren is None:
        return 0.0
    return participant - peer_nren
