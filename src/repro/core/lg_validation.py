"""Looking-glass policy validation (the §2.2 methodology, applied).

Wang & Gao (2003) and Kastanakis et al. (2023) read localpref values
out of public looking glasses and checked them against the Gao-Rexford
expectation (customers above peers above providers).  The paper used
NIKS's looking glass [27] to confirm its inferred asymmetry.  This
module runs both checks against simulated looking glasses:

1. **Gao-Rexford conformance** — per LG-operating AS, do the visible
   localpref assignments respect customer > peer > provider?
2. **Sweep-inference agreement** — does the prepend-sweep inference
   (equal vs differentiated localpref on R&E vs commodity upstreams)
   match the localpref values the looking glass exposes?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bgp.policy import Rel
from ..collectors.looking_glass import LookingGlass, LookingGlassDirectory
from ..core.classify import ExperimentInference, InferenceCategory
from ..topology.graph import Topology


@dataclass
class LGConformance:
    """Gao-Rexford conformance of one AS's visible localprefs."""

    asn: int
    assignments: Dict[int, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def conforms(self) -> bool:
        return not self.violations


@dataclass
class LGValidationReport:
    """The combined looking-glass validation."""

    conformance: List[LGConformance] = field(default_factory=list)
    inference_checked: int = 0
    inference_agreed: int = 0
    inference_details: List[str] = field(default_factory=list)

    @property
    def ases_checked(self) -> int:
        return len(self.conformance)

    @property
    def ases_conforming(self) -> int:
        return sum(1 for c in self.conformance if c.conforms)

    @property
    def inference_agreement(self) -> float:
        if not self.inference_checked:
            return 0.0
        return self.inference_agreed / self.inference_checked

    def render(self) -> str:
        lines = [
            "Looking-glass validation:",
            "  Gao-Rexford conformance: %d/%d ASes"
            % (self.ases_conforming, self.ases_checked),
            "  sweep-inference vs LG localpref: %d/%d agree (%.1f%%)"
            % (self.inference_agreed, self.inference_checked,
               100.0 * self.inference_agreement),
        ]
        for conformance in self.conformance:
            if not conformance.conforms:
                lines.append(
                    "  AS %d violations: %s"
                    % (conformance.asn,
                       "; ".join(conformance.violations))
                )
        return "\n".join(lines)


def check_gao_rexford(
    topology: Topology, glass: LookingGlass
) -> LGConformance:
    """Check one looking glass's visible localprefs against the
    customer > peer > provider expectation (ties across tiers are
    violations, matching the 2003/2023 counting)."""
    conformance = LGConformance(asn=glass.asn)
    assignments = glass.neighbor_localprefs()
    conformance.assignments = assignments
    by_rel: Dict[Rel, List[int]] = {}
    for neighbor, localpref in assignments.items():
        rel = topology.rel(glass.asn, neighbor)
        by_rel.setdefault(rel, []).append(localpref)

    def worst(rel: Rel) -> Optional[int]:
        values = by_rel.get(rel)
        return min(values) if values else None

    def best(rel: Rel) -> Optional[int]:
        values = by_rel.get(rel)
        return max(values) if values else None

    customer_min = worst(Rel.CUSTOMER)
    peer_max = best(Rel.PEER)
    peer_min = worst(Rel.PEER)
    provider_max = best(Rel.PROVIDER)
    if customer_min is not None and peer_max is not None:
        if customer_min <= peer_max:
            conformance.violations.append(
                "customer localpref %d <= peer localpref %d"
                % (customer_min, peer_max)
            )
    if customer_min is not None and provider_max is not None:
        if customer_min <= provider_max:
            conformance.violations.append(
                "customer localpref %d <= provider localpref %d"
                % (customer_min, provider_max)
            )
    if peer_min is not None and provider_max is not None:
        if peer_min < provider_max:
            conformance.violations.append(
                "peer localpref %d < provider localpref %d"
                % (peer_min, provider_max)
            )
    return conformance


def build_lg_validation(
    ecosystem,
    directory: LookingGlassDirectory,
    inference: Optional[ExperimentInference] = None,
) -> LGValidationReport:
    """Run both looking-glass checks over a directory of glasses."""
    topology = ecosystem.topology
    report = LGValidationReport()
    majority: Dict[int, InferenceCategory] = {}
    if inference is not None:
        counts: Dict[int, Dict[InferenceCategory, int]] = {}
        for item in inference.characterized():
            counts.setdefault(item.origin_asn, {}).setdefault(
                item.category, 0
            )
            counts[item.origin_asn][item.category] += 1
        for asn, per_category in counts.items():
            majority[asn] = max(per_category, key=per_category.get)

    for asn in directory.asns():
        glass = directory.glass(asn)
        report.conformance.append(check_gao_rexford(topology, glass))

        truth = ecosystem.members.get(asn)
        category = majority.get(asn)
        if truth is None or category is None:
            continue
        if not (truth.re_neighbors and truth.commodity_neighbors):
            continue
        assignments = glass.neighbor_localprefs()
        re_lp = assignments.get(truth.re_neighbors[0])
        comm_lp = assignments.get(truth.commodity_neighbors[0])
        if re_lp is None or comm_lp is None:
            continue
        report.inference_checked += 1
        if category is InferenceCategory.SWITCH_TO_RE:
            agrees = re_lp == comm_lp
        elif category is InferenceCategory.ALWAYS_RE:
            agrees = re_lp >= comm_lp
        elif category is InferenceCategory.ALWAYS_COMMODITY:
            agrees = comm_lp >= re_lp
        else:
            agrees = True  # mixed/oscillating carry no localpref claim
        if agrees:
            report.inference_agreed += 1
        else:
            report.inference_details.append(
                "AS %d: inference %s but LG shows re=%s comm=%s"
                % (asn, category.value, re_lp, comm_lp)
            )
    return report
