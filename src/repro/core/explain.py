"""``repro explain``: the evidence chain behind one prefix's category.

Replays one experiment with a provenance recorder filtered to a single
probed prefix, then renders a round-by-round narrative: the signal each
prepend configuration produced, the decision step that selected the
origin AS's route to the measurement host at each round, every signal
transition, and the category-specific evidence —

- **switch to R&E** is the paper's equal-localpref signature (§3.3):
  the narrative names the prepend configuration that flipped the
  AS-path-length comparison between the R&E and commodity routes;
- **switch to commodity** is *unexpected* under the configuration
  ordering (§4): the narrative shows the R&E route vanishing from the
  origin's candidate set — an outage signature, not policy.

The renderer (:func:`render_explanation`) is pure — it consumes the
classification plus recorded provenance events, so tests can drive it
without running an experiment; :func:`explain_prefix` is the CLI
driver that reproduces the :class:`repro.api.ExperimentSpec` seeding
convention exactly (surf at ``seed``, internet2 at ``seed + 1``,
shared probe seeds) so the replay matches the full reproduction byte
for byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import AnalysisError
from ..netutil import Prefix
from ..obs.provenance import ProvenanceRecorder, use_provenance
from ..rng import SeedTree
from ..seeds.selection import select_seeds
from ..topology.re_ecosystem import build_ecosystem
from .classify import (
    InferenceCategory,
    PrefixInference,
    classify_prefix_rounds,
    origin_map,
)

__all__ = ["explain_prefix", "render_explanation"]


def _by_round(events: List[dict]) -> Dict[int, dict]:
    out: Dict[int, dict] = {}
    for event in events:
        round_index = event.get("round")
        if round_index is not None and round_index not in out:
            out[round_index] = event
    return out


def _tagged_candidate(selection: Optional[dict], tag: str) -> Optional[dict]:
    """The candidate route carrying *tag* ("re" / "commodity"), if the
    origin AS held one at that round."""
    if selection is None:
        return None
    for candidate in selection.get("candidates", ()):
        if candidate.get("tag") == tag:
            return candidate
    return None


def _winner(selection: Optional[dict]) -> Optional[dict]:
    if selection is None or selection.get("winner") is None:
        return None
    return selection["candidates"][selection["winner"]]


def _describe_route(candidate: Optional[dict]) -> str:
    if candidate is None:
        return "-"
    return "%s via AS%s, path len %s" % (
        candidate.get("tag") or "?",
        candidate.get("neighbor"),
        candidate.get("path_len"),
    )


def _switch_to_re_evidence(
    inference: PrefixInference,
    selections: Dict[int, dict],
) -> List[str]:
    """Spell out the equal-localpref signature (§3.3)."""
    switch = inference.switch_round
    before = selections.get(switch - 1) if switch else None
    at = selections.get(switch) if switch is not None else None
    lines = [
        "Evidence (equal-localpref signature, §3.3):",
    ]
    re_before = _tagged_candidate(before, "re")
    comm_before = _tagged_candidate(before, "commodity")
    re_at = _tagged_candidate(at, "re")
    comm_at = _tagged_candidate(at, "commodity")
    if None in (re_before, comm_before, re_at, comm_at):
        lines.append(
            "  (origin AS candidate sets incomplete; cannot compare "
            "path lengths)"
        )
        return lines
    lines.append(
        "  round %d (config %s): commodity path len %s %s R&E path "
        "len %s -> best was %s"
        % (
            switch - 1,
            before.get("config"),
            comm_before["path_len"],
            "<=" if comm_before["path_len"] <= re_before["path_len"]
            else ">",
            re_before["path_len"],
            _describe_route(_winner(before)),
        )
    )
    lines.append(
        "  round %d (config %s): commodity path len %s %s R&E path "
        "len %s -> best is %s"
        % (
            switch,
            at.get("config"),
            comm_at["path_len"],
            ">" if comm_at["path_len"] > re_at["path_len"] else "<=",
            re_at["path_len"],
            _describe_route(_winner(at)),
        )
    )
    if comm_at["path_len"] > re_at["path_len"]:
        how = (
            "past the R&E path, flipping the shortest-as-path "
            "comparison"
        )
    else:
        how = (
            "to match the R&E path, pushing the tie past "
            "shortest-as-path to the later steps (the winning step at "
            "the switch round is shown above)"
        )
    lines.append(
        "  Config %s lengthened the commodity announcement's AS path "
        "(%s -> %s hops) %s while localprefs stayed equal — the route "
        "switched for exactly the reason the prepend ordering "
        "predicts." % (
            at.get("config"),
            comm_before["path_len"],
            comm_at["path_len"],
            how,
        )
    )
    return lines


def _switch_to_commodity_evidence(
    inference: PrefixInference,
    selections: Dict[int, dict],
) -> List[str]:
    """An unexpected R&E->commodity switch is an outage signature (§4)."""
    switch = inference.switch_round
    before = selections.get(switch - 1) if switch else None
    at = selections.get(switch) if switch is not None else None
    lines = ["Evidence (unexpected switch, §4):"]
    re_before = _tagged_candidate(before, "re")
    re_at = _tagged_candidate(at, "re")
    if re_before is not None and re_at is None:
        lines.append(
            "  the R&E route (%s) vanished from the origin AS's "
            "candidate set between rounds %d and %d — consistent with "
            "a link outage, not routing policy."
            % (_describe_route(re_before), switch - 1, switch)
        )
    else:
        lines.append(
            "  at round %d the origin AS selected %s over %s; the "
            "prepend ordering does not predict this transition — see "
            "the scheduled outages (§4) for ground truth."
            % (switch, _describe_route(_winner(at)),
               _describe_route(re_at))
        )
    return lines


_CATEGORY_NOTES = {
    InferenceCategory.ALWAYS_RE:
        "Every round answered over the R&E interface: the origin's "
        "best route never left the R&E fabric at any prepend depth.",
    InferenceCategory.ALWAYS_COMMODITY:
        "Every round answered over the commodity interface: no prepend "
        "configuration made the R&E route competitive.",
    InferenceCategory.MIXED:
        "At least one round answered over both interfaces — "
        "load-shared or per-system divergent paths.",
    InferenceCategory.OSCILLATING:
        "Two or more signal transitions: the selection moved back and "
        "forth across configurations.",
    InferenceCategory.EXCLUDED_LOSS:
        "At least one round got no response; the paper excludes such "
        "prefixes rather than classify on partial evidence.",
}


def _degradation_lines(degradations) -> List[str]:
    """Narrate shard recoveries so the reader knows a round survived a
    worker loss — and that, by the recovery contract, the evidence
    above is unaffected by it."""
    if not degradations:
        return []
    lines = ["", "Execution notes:"]
    for record in degradations:
        how = (
            "recovered by retry (attempt %d)" % record.attempts
            if record.action == "retry"
            else "re-executed inline after %d failed attempts"
            % (record.attempts - 1)
        )
        lines.append(
            "  round %d (config %s): shard %d survived %s; %s — "
            "results unaffected"
            % (record.round_index, record.config, record.shard_id,
               record.detail or "an execution failure", how)
        )
    return lines


def render_explanation(
    inference: PrefixInference,
    experiment: str,
    signal_events: List[dict],
    round_selections: List[dict],
    degradations=None,
) -> str:
    """Render the narrative for one classified prefix.

    *signal_events* and *round_selections* are the prefix's recorded
    ``kind="signal"`` and ``source="round"`` provenance events.
    *degradations* (optional
    :class:`~repro.experiment.records.DegradationRecord` list) adds an
    "Execution notes" section describing shard recoveries the run
    survived; a fault-free serial replay passes none, leaving the
    narrative unchanged.
    """
    signals = _by_round(signal_events)
    selections = _by_round(round_selections)
    lines = [
        "Prefix %s (origin AS%d), %s experiment"
        % (inference.prefix, inference.origin_asn, experiment),
        "Category: %s" % inference.category,
        "",
        "%-6s %-8s %-10s %-11s %-22s %s"
        % ("round", "config", "signal", "responses", "winning step",
           "origin's best route"),
    ]
    for index, signal in enumerate(inference.signals):
        event = signals.get(index, {})
        selection = selections.get(index)
        winning_step = (selection or {}).get("winning_step")
        if winning_step is None and selection is not None:
            # best() short-circuits a single candidate: no step ran.
            if len(selection.get("candidates", ())) == 1:
                winning_step = "only-route"
        lines.append(
            "%-6d %-8s %-10s %-11s %-22s %s"
            % (
                index,
                event.get("config", "?"),
                signal.value,
                "%s/%s" % (event.get("responses", "?"),
                           event.get("probes", "?")),
                winning_step or "-",
                _describe_route(_winner(selection)),
            )
        )
    lines.append("")
    if inference.transitions:
        lines.append("Transitions:")
        for transition in inference.transitions:
            lines.append(
                "  round %d (config %s): %s -> %s"
                % (transition.round_index, transition.config,
                   transition.from_signal.value,
                   transition.to_signal.value)
            )
    else:
        lines.append("Transitions: none")
    lines.append("")
    if inference.category is InferenceCategory.SWITCH_TO_RE:
        lines.extend(_switch_to_re_evidence(inference, selections))
    elif inference.category is InferenceCategory.SWITCH_TO_COMMODITY:
        lines.extend(_switch_to_commodity_evidence(inference, selections))
    else:
        lines.append(_CATEGORY_NOTES[inference.category])
    lines.extend(_degradation_lines(degradations))
    return "\n".join(lines)


def explain_prefix(
    prefix_text: str,
    experiment: str = "surf",
    scale: float = 0.1,
    seed: int = 0,
    ecosystem=None,
    workers: int = 1,
    shard_size: Optional[int] = None,
    fault_plan=None,
    shard_timeout: Optional[float] = None,
    recorder: Optional[ProvenanceRecorder] = None,
    decision_backend: str = "object",
) -> str:
    """Replay *experiment* and explain one probed prefix's category.

    Raises :class:`~repro.errors.AnalysisError` when the prefix is not
    in the experiment's probed set.  Seeding follows the
    :class:`repro.api.ExperimentSpec` convention (shared probe seeds;
    internet2 runs at ``seed + 1``), so the narrative describes
    exactly what the full ``reproduce`` run classified — at any
    ``workers``/``shard_size``/``shard_timeout``, which never change
    the evidence chain, and under any *fault_plan*, whose execution
    faults are recovered (and reported) without changing it.
    """
    from ..api import ExperimentSpec, build_runner

    if experiment not in ("surf", "internet2"):
        raise AnalysisError("experiment must be 'surf' or 'internet2'")
    prefix = Prefix.parse(prefix_text)
    spec = ExperimentSpec(
        experiment=experiment, seed=seed, scale=scale, workers=workers,
        shard_size=shard_size, shard_timeout=shard_timeout,
        decision_backend=decision_backend,
    )
    if ecosystem is None:
        ecosystem = build_ecosystem(spec.ecosystem_config(), seed=seed)
    origins = origin_map(ecosystem)
    tree = SeedTree(seed)
    shared_seeds = select_seeds(ecosystem, seed_tree=tree.child("seeds"))
    if prefix not in shared_seeds.targets:
        raise AnalysisError(
            "prefix %s is not in the probed set (%d prefixes; see "
            "'repro funnel')" % (prefix, len(shared_seeds.targets))
        )
    runner = build_runner(
        spec, ecosystem, shared_seeds, fault_plan=fault_plan
    )
    # A filtered recorder: only this prefix's events are retained, so
    # the full nine-round chain survives any ring pressure.  A caller
    # may pass its own (the CLI does, to export the chain afterwards).
    if recorder is None:
        recorder = ProvenanceRecorder(prefix_filter=[prefix])
    with use_provenance(recorder):
        result = runner.run()
    inference = classify_prefix_rounds(
        prefix,
        origins[prefix],
        result.responses_for(prefix),
        list(result.schedule.configs),
    )
    return render_explanation(
        inference,
        experiment,
        recorder.events(kind="signal", prefix=prefix),
        recorder.events(kind="selection", prefix=prefix, source="round"),
        degradations=result.degradations,
    )
