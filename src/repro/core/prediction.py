"""Routing-model implication: how much do inferred preferences help?

The paper's motivation is that BGP hides the information needed for
accurate routing models: Gao-Rexford + shortest-AS-path predicts edge
egress poorly, and §4.2 shows relative prepending "provides some
signal ... but relying on that signal would lead to error".  This
module quantifies exactly that, on the simulated population, by
predicting each responsive prefix's return-route type at the neutral
configuration (0-0) under three models and scoring them against the
observed behaviour:

1. ``shortest-path`` — every AS assigns equal localpref; predict R&E
   iff the R&E path is shorter (ties predict R&E via the older-route
   reasoning of §A: at 0-0 the commodity route is older, so predict
   commodity on ties);
2. ``prepend-signal`` — the §4.2 heuristic: predict R&E iff the origin
   prepends more toward commodity than toward R&E, commodity iff the
   reverse, shortest-path otherwise;
3. ``inferred`` — use this paper's method: the inference category from
   the prepend sweep.

The "observed" label is the interface seen at the 0-0 round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..bgp.attributes import Announcement
from ..bgp.fastpath import propagate_fastpath
from ..collectors.rib import observe_origin_prepending
from ..errors import AnalysisError
from ..experiment.records import ExperimentResult
from .classify import ExperimentInference, InferenceCategory, RoundSignal

MODELS = ("shortest-path", "prepend-signal", "inferred")


@dataclass
class ModelScore:
    """Accuracy of one prediction model."""

    model: str
    correct: int = 0
    total: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


@dataclass
class PredictionReport:
    """Per-model scores plus a per-prefix detail map."""

    scores: Dict[str, ModelScore] = field(default_factory=dict)
    details: Dict = field(default_factory=dict)

    def score(self, model: str) -> ModelScore:
        return self.scores[model]

    def render(self) -> str:
        lines = [
            "Route prediction accuracy at configuration 0-0:",
            "%-16s %10s %10s" % ("model", "correct", "accuracy"),
        ]
        for model in MODELS:
            score = self.scores[model]
            lines.append(
                "%-16s %10d %9.1f%%"
                % (model, score.correct, 100.0 * score.accuracy)
            )
        return "\n".join(lines)


def _observed_at_neutral(
    inference: ExperimentInference, result: ExperimentResult
):
    """prefix -> "re"/"commodity" observed at the 0-0 round (prefixes
    with loss or mixed signals there are skipped)."""
    try:
        neutral_index = list(result.schedule.configs).index("0-0")
    except ValueError:
        raise AnalysisError("schedule has no 0-0 configuration") from None
    observed = {}
    for prefix, item in inference.inferences.items():
        if not item.characterized:
            continue
        if neutral_index >= len(item.signals):
            continue
        signal = item.signals[neutral_index]
        if signal is RoundSignal.RE:
            observed[prefix] = "re"
        elif signal is RoundSignal.COMMODITY:
            observed[prefix] = "commodity"
    return observed


def _path_length_prediction(ecosystem, result: ExperimentResult):
    """prefix -> predicted type under the equal-localpref shortest-path
    model, computed from each origin AS's candidate routes at 0-0."""
    announcements = [
        Announcement(ecosystem.measurement_prefix, result.re_origin,
                     tag="re"),
        Announcement(ecosystem.measurement_prefix, result.commodity_origin,
                     tag="commodity"),
    ]
    state = propagate_fastpath(ecosystem.topology, announcements)
    prediction = {}
    for plan in ecosystem.studied_prefixes():
        candidates = state.candidates_at(plan.origin_asn)
        re_lengths = [
            r.path.length for r in candidates if r.tag == "re"
        ]
        commodity_lengths = [
            r.path.length for r in candidates if r.tag == "commodity"
        ]
        if not commodity_lengths:
            prediction[plan.prefix] = "re" if re_lengths else None
        elif not re_lengths:
            prediction[plan.prefix] = "commodity"
        elif min(re_lengths) < min(commodity_lengths):
            prediction[plan.prefix] = "re"
        else:
            # Ties go to the older commodity route at 0-0 (§A).
            prediction[plan.prefix] = "commodity"
    return prediction


def _inferred_prediction(inference: ExperimentInference):
    """prefix -> predicted type at 0-0 from the inference category."""
    prediction = {}
    for prefix, item in inference.inferences.items():
        if item.category is InferenceCategory.ALWAYS_RE:
            prediction[prefix] = "re"
        elif item.category is InferenceCategory.ALWAYS_COMMODITY:
            prediction[prefix] = "commodity"
        elif item.category is InferenceCategory.SWITCH_TO_RE:
            # Equal localpref: at 0-0 the shorter path wins; the switch
            # round tells us which side that was.
            if item.switch_round is not None and item.switch_config:
                # Switched at or before 0-0 -> R&E already selected.
                prediction[prefix] = (
                    "re"
                    if item.switch_config.endswith("-0")
                    or item.switch_config == "0-0"
                    else "commodity"
                )
    return prediction


def build_prediction_report(
    ecosystem,
    inference: ExperimentInference,
    result: ExperimentResult,
) -> PredictionReport:
    """Score the three models against observed 0-0 behaviour."""
    observed = _observed_at_neutral(inference, result)
    shortest = _path_length_prediction(ecosystem, result)
    inferred = _inferred_prediction(inference)
    prepending = observe_origin_prepending(ecosystem)

    report = PredictionReport(
        scores={model: ModelScore(model) for model in MODELS}
    )
    for prefix, actual in observed.items():
        predictions = {}
        predictions["shortest-path"] = shortest.get(prefix)
        observation = prepending.get(prefix)
        if observation is None or not observation.has_commodity:
            predictions["prepend-signal"] = shortest.get(prefix)
        elif observation.commodity_prepends > observation.re_prepends:
            predictions["prepend-signal"] = "re"
        elif observation.re_prepends > observation.commodity_prepends:
            predictions["prepend-signal"] = "commodity"
        else:
            predictions["prepend-signal"] = shortest.get(prefix)
        predictions["inferred"] = inferred.get(prefix)

        report.details[prefix] = (actual, predictions)
        for model in MODELS:
            predicted = predictions[model]
            if predicted is None:
                continue
            score = report.scores[model]
            score.total += 1
            if predicted == actual:
                score.correct += 1
    return report
