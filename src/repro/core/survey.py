"""Generalised relative-route-preference surveys (§5).

The paper argues its method applies beyond R&E: announce one prefix
via two route classes (R&E vs commodity, IXP peering vs transit, two
providers, ...), sweep prepends on each side, and classify every
target AS by which announcement its best route descends from at each
step.  This module is the control-plane formulation of that method —
it classifies ASes from their converged RIBs directly, and is what the
probing pipeline measures from the outside.

Example (the Figure 6 IXP setup)::

    survey = PreferenceSurvey(
        topology,
        AnnouncementSpec(prefix, host_asn, tag="peer",
                         neighbors=ixp_members),
        AnnouncementSpec(prefix, host_asn2, tag="provider"),
    )
    outcome = survey.run(targets=[alpha, beta])
    outcome.category_of(alpha)   # SurveyCategory.EQUAL_PREFERENCE

The default sweep mirrors the paper's: decrease side-A prepends, then
increase side-B prepends, so a single A->B... transition identifies
equal localpref given route-age semantics (§A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..bgp.attributes import Announcement
from ..bgp.fastpath import propagate_fastpath
from ..errors import AnalysisError
from ..netutil import Prefix
from ..topology.graph import Topology


@dataclass(frozen=True)
class AnnouncementSpec:
    """One side of the survey: an origin and its announcement tag.

    ``neighbors`` optionally restricts which neighbors of the origin
    receive the announcement (e.g. only the IXP route server side of a
    multi-homed host); ``None`` announces to all.
    """

    prefix: Prefix
    origin_asn: int
    tag: str
    neighbors: Optional[Tuple[int, ...]] = None


class SurveyCategory(Enum):
    """Per-AS survey outcome (mirrors the paper's Table 1 categories
    for a two-class announcement)."""

    ALWAYS_FIRST = "always-first"
    ALWAYS_SECOND = "always-second"
    SWITCHES_TO_FIRST = "switches-to-first"
    SWITCHES_TO_SECOND = "switches-to-second"
    UNSTABLE = "unstable"
    UNREACHABLE = "unreachable"

    def __str__(self) -> str:
        return self.value


#: Default sweep, as (first_side_prepends, second_side_prepends).
DEFAULT_SWEEP: Tuple[Tuple[int, int], ...] = (
    (4, 0), (3, 0), (2, 0), (1, 0), (0, 0),
    (0, 1), (0, 2), (0, 3), (0, 4),
)


@dataclass
class TargetOutcome:
    """The sweep trace for one target AS."""

    asn: int
    tags: List[Optional[str]] = field(default_factory=list)
    category: SurveyCategory = SurveyCategory.UNREACHABLE
    switch_step: Optional[int] = None

    @property
    def path_length_sensitive(self) -> bool:
        """A switch implies the AS (or its upstream) broke the tie with
        AS path length — the equal-localpref signature."""
        return self.category in (
            SurveyCategory.SWITCHES_TO_FIRST,
            SurveyCategory.SWITCHES_TO_SECOND,
        )


@dataclass
class SurveyOutcome:
    """Results of one survey run."""

    sweep: Tuple[Tuple[int, int], ...]
    first_tag: str
    second_tag: str
    targets: Dict[int, TargetOutcome] = field(default_factory=dict)

    def category_of(self, asn: int) -> SurveyCategory:
        outcome = self.targets.get(asn)
        return outcome.category if outcome else SurveyCategory.UNREACHABLE

    def of_category(self, category: SurveyCategory) -> List[int]:
        return sorted(
            asn
            for asn, outcome in self.targets.items()
            if outcome.category is category
        )

    def summary(self) -> Dict[SurveyCategory, int]:
        counts: Dict[SurveyCategory, int] = {}
        for outcome in self.targets.values():
            counts[outcome.category] = counts.get(outcome.category, 0) + 1
        return counts


def _classify_tags(
    tags: Sequence[Optional[str]], first_tag: str
) -> Tuple[SurveyCategory, Optional[int]]:
    if any(tag is None for tag in tags):
        return SurveyCategory.UNREACHABLE, None
    transitions = [
        index + 1
        for index, (a, b) in enumerate(zip(tags, tags[1:]))
        if a != b
    ]
    if not transitions:
        if tags[0] == first_tag:
            return SurveyCategory.ALWAYS_FIRST, None
        return SurveyCategory.ALWAYS_SECOND, None
    if len(transitions) == 1:
        step = transitions[0]
        if tags[-1] == first_tag:
            return SurveyCategory.SWITCHES_TO_FIRST, step
        return SurveyCategory.SWITCHES_TO_SECOND, step
    return SurveyCategory.UNSTABLE, transitions[0]


class PreferenceSurvey:
    """Runs the prepend sweep and classifies target ASes."""

    def __init__(
        self,
        topology: Topology,
        first: AnnouncementSpec,
        second: AnnouncementSpec,
        sweep: Tuple[Tuple[int, int], ...] = DEFAULT_SWEEP,
    ) -> None:
        if first.prefix != second.prefix:
            raise AnalysisError("both announcement sides need one prefix")
        if first.tag == second.tag:
            raise AnalysisError("announcement tags must differ")
        self.topology = topology
        self.first = first
        self.second = second
        self.sweep = sweep
        self._saved_filters: Dict[Tuple[int, int], set] = {}

    def _announcement(
        self, spec: AnnouncementSpec, prepends: int
    ) -> Announcement:
        if spec.neighbors is not None:
            # Scope the announcement to the listed neighbors via the
            # origin's tag-scoped export policy (restored after run()).
            policy = self.topology.node(spec.origin_asn).policy
            for neighbor in self.topology.neighbors(spec.origin_asn):
                key = (spec.origin_asn, neighbor)
                if key not in self._saved_filters:
                    self._saved_filters[key] = set(
                        policy.no_export_tags.get(neighbor, ())
                    )
                blocked = policy.no_export_tags.setdefault(neighbor, set())
                if neighbor in spec.neighbors:
                    blocked.discard(spec.tag)
                else:
                    blocked.add(spec.tag)
        return Announcement(
            prefix=spec.prefix,
            origin_asn=spec.origin_asn,
            default_prepends=prepends,
            tag=spec.tag,
        )

    def _restore_filters(self) -> None:
        for (asn, neighbor), saved in self._saved_filters.items():
            policy = self.topology.node(asn).policy
            if saved:
                policy.no_export_tags[neighbor] = set(saved)
            else:
                policy.no_export_tags.pop(neighbor, None)
        self._saved_filters.clear()

    def run(self, targets: Optional[Sequence[int]] = None) -> SurveyOutcome:
        """Sweep and classify.

        *targets* defaults to every AS in the topology other than the
        announcement origins.
        """
        if targets is None:
            origins = {self.first.origin_asn, self.second.origin_asn}
            targets = [
                node.asn
                for node in self.topology.ases()
                if node.asn not in origins
            ]
        outcome = SurveyOutcome(
            sweep=self.sweep,
            first_tag=self.first.tag,
            second_tag=self.second.tag,
        )
        traces: Dict[int, List[Optional[str]]] = {
            asn: [] for asn in targets
        }
        try:
            for first_prepends, second_prepends in self.sweep:
                result = propagate_fastpath(
                    self.topology,
                    [
                        self._announcement(self.first, first_prepends),
                        self._announcement(self.second, second_prepends),
                    ],
                )
                for asn in targets:
                    route = result.route_at(asn)
                    traces[asn].append(route.tag if route else None)
        finally:
            self._restore_filters()
        for asn, tags in traces.items():
            category, step = _classify_tags(tags, self.first.tag)
            outcome.targets[asn] = TargetOutcome(
                asn=asn, tags=tags, category=category, switch_step=step
            )
        return outcome


def infer_equal_localpref(
    topology: Topology,
    first: AnnouncementSpec,
    second: AnnouncementSpec,
    target_asn: int,
    sweep: Tuple[Tuple[int, int], ...] = DEFAULT_SWEEP,
) -> bool:
    """Convenience: does *target_asn* appear to assign equal localpref
    to the two route classes (i.e. does it flip with AS path length)?"""
    survey = PreferenceSurvey(topology, first, second, sweep)
    outcome = survey.run(targets=[target_asn])
    return outcome.targets[target_asn].path_length_sensitive
