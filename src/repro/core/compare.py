"""Table 2: comparing the SURF and Internet2 experiments.

Prefixes with packet loss in either run, mixed routing, oscillation, or
an unexpected switch to commodity are not comparable; the rest cross-
tabulate into a 3x3 of {always commodity, always R&E, switch to R&E}.
The analysis also attributes differences to asymmetric R&E transits
(the NIKS effect of Figure 4) using the ecosystem's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from .classify import ExperimentInference, InferenceCategory

_COMPARABLE = (
    InferenceCategory.ALWAYS_COMMODITY,
    InferenceCategory.ALWAYS_RE,
    InferenceCategory.SWITCH_TO_RE,
)


@dataclass
class Table2:
    """The cross-experiment comparison."""

    packet_loss: int = 0
    mixed: int = 0
    oscillating: int = 0
    switch_to_commodity: int = 0
    cells: Dict[Tuple[InferenceCategory, InferenceCategory], int] = field(
        default_factory=dict
    )
    niks_attributed: int = 0
    niks_cell: Optional[Tuple[InferenceCategory, InferenceCategory]] = None
    different_ases: int = 0
    niks_ases: int = 0

    @property
    def incomparable(self) -> int:
        return (
            self.packet_loss
            + self.mixed
            + self.oscillating
            + self.switch_to_commodity
        )

    @property
    def same(self) -> int:
        return sum(
            count
            for (surf, i2), count in self.cells.items()
            if surf is i2
        )

    @property
    def different(self) -> int:
        return sum(
            count
            for (surf, i2), count in self.cells.items()
            if surf is not i2
        )

    @property
    def comparable(self) -> int:
        return self.same + self.different

    @property
    def agreement(self) -> float:
        return self.same / self.comparable if self.comparable else 0.0

    def cell(
        self, surf: InferenceCategory, i2: InferenceCategory
    ) -> int:
        return self.cells.get((surf, i2), 0)

    def render(self) -> str:
        lines = [
            "Table 2: comparison of SURF and Internet2 results",
            "  Packet loss %d / Mixed %d / Oscillating %d / "
            "Switch to commodity %d" % (
                self.packet_loss, self.mixed, self.oscillating,
                self.switch_to_commodity,
            ),
            "  Incomparable prefixes: %d" % self.incomparable,
            "",
            "  %-20s %-20s %8s" % ("SURF", "Internet2", "Prefixes"),
        ]
        total = self.comparable
        for (surf, i2), count in sorted(
            self.cells.items(), key=lambda kv: (kv[0][0] is kv[0][1], -kv[1])
        ):
            lines.append(
                "  %-20s %-20s %8d %5.1f%%"
                % (surf.value, i2.value, count,
                   100.0 * count / total if total else 0.0)
            )
        lines += [
            "",
            "  Different inferences: %d (%.1f%%) across %d ASes"
            % (self.different, 100.0 * self.different / total if total else 0,
               self.different_ases),
            "  Same inferences: %d (%.1f%%)"
            % (self.same, 100.0 * self.agreement),
            "  Comparable prefixes: %d" % self.comparable,
            "  NIKS-attributed differences: %d prefixes, %d ASes"
            % (self.niks_attributed, self.niks_ases),
        ]
        return "\n".join(lines)


def build_table2(
    surf: ExperimentInference,
    internet2: ExperimentInference,
    ecosystem=None,
) -> Table2:
    """Cross-tabulate two experiments' inferences.

    When *ecosystem* is given, differences caused by members behind the
    NIKS analogue are attributed (the paper traced 161 of 363
    differences to NIKS's per-neighbor localpref assignment).
    """
    table = Table2()
    shared = set(surf.inferences) & set(internet2.inferences)
    niks_asn = ecosystem.niks_asn if ecosystem is not None else None
    members = ecosystem.members if ecosystem is not None else {}
    different_ases: Set[int] = set()
    niks_ases: Set[int] = set()

    for prefix in shared:
        a = surf.inferences[prefix]
        b = internet2.inferences[prefix]
        if (
            a.category is InferenceCategory.EXCLUDED_LOSS
            or b.category is InferenceCategory.EXCLUDED_LOSS
        ):
            table.packet_loss += 1
            continue
        if (
            a.category is InferenceCategory.MIXED
            or b.category is InferenceCategory.MIXED
        ):
            table.mixed += 1
            continue
        if (
            a.category is InferenceCategory.OSCILLATING
            or b.category is InferenceCategory.OSCILLATING
        ):
            table.oscillating += 1
            continue
        if (
            a.category is InferenceCategory.SWITCH_TO_COMMODITY
            or b.category is InferenceCategory.SWITCH_TO_COMMODITY
        ):
            table.switch_to_commodity += 1
            continue
        key = (a.category, b.category)
        table.cells[key] = table.cells.get(key, 0) + 1
        if a.category is not b.category:
            different_ases.add(a.origin_asn)
            truth = members.get(a.origin_asn)
            if truth is not None and truth.behind_transit == niks_asn:
                table.niks_attributed += 1
                table.niks_cell = key
                niks_ases.add(a.origin_asn)

    table.different_ases = len(different_ases)
    table.niks_ases = len(niks_ases)
    return table
