"""Per-prefix route-preference classification (§4).

Each probing round yields a *signal* for a prefix: did responses arrive
over R&E, commodity, both ("mixed"), or not at all.  The sequence of
signals across the nine configurations maps to the paper's six
inference categories:

- **always R&E / always commodity** — no transitions;
- **switch to R&E** — exactly one commodity→R&E transition, the
  equal-localpref signature given the prepend ordering (§3.3);
- **switch to commodity** — one R&E→commodity transition, which the
  ordering makes unexpected (an outage signature, §4);
- **mixed** — at least one round with both route types;
- **oscillating** — two or more transitions;
- prefixes missing a response in any round are excluded (packet loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from ..errors import AnalysisError
from ..experiment.records import ExperimentResult
from ..netutil import Prefix
from ..obs.provenance import signal_from_kinds


class RoundSignal(Enum):
    """What one probing round showed for one prefix."""

    RE = "re"
    COMMODITY = "commodity"
    BOTH = "both"
    NONE = "none"


class InferenceCategory(Enum):
    """The paper's Table 1 categories, plus the loss exclusion."""

    ALWAYS_RE = "Always R&E"
    ALWAYS_COMMODITY = "Always commodity"
    SWITCH_TO_RE = "Switch to R&E"
    SWITCH_TO_COMMODITY = "Switch to commodity"
    MIXED = "Mixed R&E + commodity"
    OSCILLATING = "Oscillating"
    EXCLUDED_LOSS = "Excluded (packet loss)"

    def __str__(self) -> str:
        return self.value


#: Table 1's row order.
TABLE1_ORDER = (
    InferenceCategory.ALWAYS_RE,
    InferenceCategory.ALWAYS_COMMODITY,
    InferenceCategory.SWITCH_TO_RE,
    InferenceCategory.SWITCH_TO_COMMODITY,
    InferenceCategory.MIXED,
    InferenceCategory.OSCILLATING,
)


@dataclass
class SignalTransition:
    """One signal change between consecutive rounds — the unit of
    evidence behind every switch/oscillation classification."""

    round_index: int          # round where the *new* signal appeared
    config: str               # that round's prepend configuration
    from_signal: RoundSignal
    to_signal: RoundSignal

    def as_event_fields(self) -> Dict[str, object]:
        """JSON-safe rendering (provenance / ``repro explain``)."""
        return {
            "round": self.round_index,
            "config": self.config,
            "from": self.from_signal.value,
            "to": self.to_signal.value,
        }


@dataclass
class PrefixInference:
    """Classification of one prefix in one experiment."""

    prefix: Prefix
    origin_asn: int
    category: InferenceCategory
    signals: List[RoundSignal] = field(default_factory=list)
    switch_round: Optional[int] = None   # round index of the transition
    switch_config: Optional[str] = None  # its prepend configuration
    #: Every round-to-round signal change, in round order — the full
    #: justification chain for the category (switch categories have
    #: exactly one entry; oscillating two or more).
    transitions: List[SignalTransition] = field(default_factory=list)

    @property
    def characterized(self) -> bool:
        return self.category is not InferenceCategory.EXCLUDED_LOSS


def classify_signals(signals: Sequence[RoundSignal]) -> InferenceCategory:
    """Map a signal sequence to a category (see module docstring)."""
    if not signals:
        raise AnalysisError("cannot classify an empty signal sequence")
    if any(signal is RoundSignal.NONE for signal in signals):
        return InferenceCategory.EXCLUDED_LOSS
    if any(signal is RoundSignal.BOTH for signal in signals):
        return InferenceCategory.MIXED
    transitions = sum(
        1 for a, b in zip(signals, signals[1:]) if a is not b
    )
    if transitions == 0:
        if signals[0] is RoundSignal.RE:
            return InferenceCategory.ALWAYS_RE
        return InferenceCategory.ALWAYS_COMMODITY
    if transitions == 1:
        if signals[-1] is RoundSignal.RE:
            return InferenceCategory.SWITCH_TO_RE
        return InferenceCategory.SWITCH_TO_COMMODITY
    return InferenceCategory.OSCILLATING


def _round_signal(responses) -> RoundSignal:
    kinds = {
        response.interface_kind
        for response in responses
        if response.responded and response.interface_kind
    }
    # Single mapping shared with the provenance stream, so signal
    # events and classifications can never disagree on a round.
    return RoundSignal(signal_from_kinds(kinds))


def classify_prefix_rounds(
    prefix: Prefix,
    origin_asn: int,
    per_round_responses: Sequence[Sequence],
    configs: Sequence[str],
) -> PrefixInference:
    """Classify one prefix from its per-round response lists."""
    if len(per_round_responses) != len(configs):
        raise AnalysisError("round count does not match config count")
    signals = [_round_signal(responses) for responses in per_round_responses]
    category = classify_signals(signals)
    transitions = [
        SignalTransition(
            round_index=index + 1,
            config=configs[index + 1],
            from_signal=a,
            to_signal=b,
        )
        for index, (a, b) in enumerate(zip(signals, signals[1:]))
        if a is not b
    ]
    inference = PrefixInference(
        prefix=prefix,
        origin_asn=origin_asn,
        category=category,
        signals=signals,
        transitions=transitions,
    )
    if category in (
        InferenceCategory.SWITCH_TO_RE,
        InferenceCategory.SWITCH_TO_COMMODITY,
    ):
        inference.switch_round = transitions[0].round_index
        inference.switch_config = transitions[0].config
    return inference


@dataclass
class ExperimentInference:
    """All prefix classifications for one experiment."""

    experiment: str
    inferences: Dict[Prefix, PrefixInference] = field(default_factory=dict)

    def characterized(self) -> List[PrefixInference]:
        return [i for i in self.inferences.values() if i.characterized]

    def of_category(self, category: InferenceCategory) -> List[PrefixInference]:
        return [
            i for i in self.inferences.values() if i.category is category
        ]

    def by_as(self) -> Dict[int, List[PrefixInference]]:
        out: Dict[int, List[PrefixInference]] = {}
        for inference in self.inferences.values():
            out.setdefault(inference.origin_asn, []).append(inference)
        return out


def classify_experiment(
    result: ExperimentResult,
    origin_of: Dict[Prefix, int],
) -> ExperimentInference:
    """Classify every probed prefix of an experiment.

    ``origin_of`` maps prefixes to their origin ASN (from the
    ecosystem's topology).
    """
    configs = list(result.schedule.configs)
    out = ExperimentInference(experiment=result.experiment)
    for prefix in result.seed_plan.targets:
        origin_asn = origin_of.get(prefix)
        if origin_asn is None:
            # A bare KeyError here named nothing, while the runner's
            # provenance capture silently skipped the same mismatch —
            # fail loudly and say which prefix fell between the
            # probing plan and the origin map.
            raise AnalysisError(
                "probed prefix %s has no origin in the ecosystem's "
                "origin map; the seed plan and origin_of disagree"
                % prefix
            )
        per_round = [
            round_result.responses.get(prefix, [])
            for round_result in result.rounds
        ]
        out.inferences[prefix] = classify_prefix_rounds(
            prefix, origin_asn, per_round, configs
        )
    return out


def origin_map(ecosystem) -> Dict[Prefix, int]:
    """Prefix -> origin ASN for an ecosystem's studied prefixes."""
    return {
        plan.prefix: plan.origin_asn
        for plan in ecosystem.studied_prefixes()
    }
