"""§4.3 / Figure 5: equal-localpref route selection at the RIPE analogue.

RIPE assigns commodity and R&E routes the same localpref (validated
with them), so the routes it selects toward R&E prefixes reveal which
regions' announcements win BGP tie-breaks.  The analysis computes, per
country and per U.S. state, the percentage of R&E-connected ASes with
at least one prefix reached over an R&E path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..collectors.rib import CollectorRIB, build_collector_rib, neighbor_is_re


@dataclass
class RegionStat:
    """Per-region R&E reachability."""

    region: str
    total_ases: int = 0
    re_ases: int = 0

    @property
    def share(self) -> float:
        return self.re_ases / self.total_ases if self.total_ases else 0.0


@dataclass
class Figure5:
    """The Figure 5 reproduction as per-region tables."""

    observer_asn: int
    total_prefixes: int = 0
    re_prefixes: int = 0
    total_ases: int = 0
    re_ases: int = 0
    countries: Dict[str, RegionStat] = field(default_factory=dict)
    us_states: Dict[str, RegionStat] = field(default_factory=dict)
    min_region_ases: int = 4

    @property
    def re_prefix_share(self) -> float:
        return self.re_prefixes / self.total_prefixes if self.total_prefixes else 0.0

    @property
    def re_as_share(self) -> float:
        return self.re_ases / self.total_ases if self.total_ases else 0.0

    def eligible_countries(self) -> List[RegionStat]:
        """Regions with at least ``min_region_ases`` geolocated ASes,
        as in the paper's maps."""
        return sorted(
            (
                stat
                for stat in self.countries.values()
                if stat.total_ases >= self.min_region_ases
            ),
            key=lambda s: -s.share,
        )

    def eligible_states(self) -> List[RegionStat]:
        return sorted(
            (
                stat
                for stat in self.us_states.values()
                if stat.total_ases >= self.min_region_ases
            ),
            key=lambda s: -s.share,
        )

    def render(self) -> str:
        lines = [
            "Figure 5: share of ASes reached over R&E by the "
            "equal-localpref observer (AS %d)" % self.observer_asn,
            "  overall: %d/%d prefixes (%.1f%%), %d/%d ASes (%.1f%%)"
            % (
                self.re_prefixes, self.total_prefixes,
                100.0 * self.re_prefix_share,
                self.re_ases, self.total_ases,
                100.0 * self.re_as_share,
            ),
            "  countries (>= %d ASes):" % self.min_region_ases,
        ]
        for stat in self.eligible_countries():
            lines.append(
                "    %-3s %5.1f%%  (%d/%d ASes)"
                % (stat.region, 100.0 * stat.share, stat.re_ases,
                   stat.total_ases)
            )
        lines.append("  U.S. states (>= %d ASes):" % self.min_region_ases)
        for stat in self.eligible_states():
            lines.append(
                "    %-3s %5.1f%%  (%d/%d ASes)"
                % (stat.region, 100.0 * stat.share, stat.re_ases,
                   stat.total_ases)
            )
        return "\n".join(lines)


def build_figure5(
    ecosystem,
    rib: Optional[CollectorRIB] = None,
    observer_asn: Optional[int] = None,
) -> Figure5:
    """Compute per-region R&E reach for the equal-localpref observer."""
    observer = observer_asn if observer_asn is not None else ecosystem.ripe_asn
    if rib is None:
        rib = build_collector_rib(ecosystem, [observer])
    topology = ecosystem.topology
    geo = ecosystem.geo
    figure = Figure5(observer_asn=observer)

    as_re: Dict[int, bool] = {}
    as_region: Dict[int, Tuple[Optional[str], Optional[str]]] = {}

    for plan in ecosystem.studied_prefixes():
        entry = rib.route(observer, plan.prefix)
        if entry is None:
            continue
        figure.total_prefixes += 1
        via_re = neighbor_is_re(topology, entry.first_hop)
        if via_re:
            figure.re_prefixes += 1
        origin = plan.origin_asn
        as_re[origin] = as_re.get(origin, False) or via_re
        if origin not in as_region:
            record = geo.locate_prefix(plan.prefix) if geo else None
            if record is not None:
                as_region[origin] = (record.country, record.us_state)
            else:
                node = topology.node(origin)
                as_region[origin] = (node.country, node.us_state)

    figure.total_ases = len(as_re)
    figure.re_ases = sum(1 for reached in as_re.values() if reached)
    for asn, reached in as_re.items():
        country, us_state = as_region.get(asn, (None, None))
        if country:
            stat = figure.countries.setdefault(
                country, RegionStat(region=country)
            )
            stat.total_ases += 1
            if reached:
                stat.re_ases += 1
        if us_state:
            stat = figure.us_states.setdefault(
                us_state, RegionStat(region=us_state)
            )
            stat.total_ases += 1
            if reached:
                stat.re_ases += 1
    return figure
