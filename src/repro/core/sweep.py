"""Cross-seed aggregation for campaign sweeps.

One campaign cell is one full nine-configuration experiment; this
module turns a grid of completed cell records into the robustness
report the single-seed reproduction cannot give: per-category prefix
fractions with mean/min/max and bootstrap confidence intervals across
seeds, grouped by (experiment, scenario) and compared against the
paper's published Table 1 shares.  The summary is a pure function of
the cell records — no wall clocks, no ordering dependence — so an
interrupted-then-resumed campaign renders and serialises the summary
byte-identically to an uninterrupted one.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..rng import derive_seed
from .classify import TABLE1_ORDER, InferenceCategory

__all__ = [
    "CategoryStats",
    "GroupSummary",
    "CampaignSummary",
    "build_campaign_summary",
    "bootstrap_ci",
    "PAPER_TABLE1_SHARES",
    "PREPEND_INSENSITIVE",
]

#: Derived metric: the share of prefixes whose inference never moved
#: under prepending (always R&E + always commodity) — the paper's
#: "~88% of prefixes are insensitive to prepending" headline.
PREPEND_INSENSITIVE = "Prepend-insensitive"

#: Published Table 1 prefix shares (fractions of characterized
#: prefixes) per experiment — the targets the sweep distributions are
#: compared against.  Surf = Table 1a, Internet2 = Table 1b.
PAPER_TABLE1_SHARES: Dict[str, Dict[str, float]] = {
    "surf": {
        InferenceCategory.ALWAYS_RE.value: 0.818,
        InferenceCategory.ALWAYS_COMMODITY.value: 0.070,
        InferenceCategory.SWITCH_TO_RE.value: 0.080,
        InferenceCategory.SWITCH_TO_COMMODITY.value: 0.000,
        InferenceCategory.MIXED.value: 0.031,
        InferenceCategory.OSCILLATING.value: 0.000,
        PREPEND_INSENSITIVE: 0.888,
    },
    "internet2": {
        InferenceCategory.ALWAYS_RE.value: 0.808,
        InferenceCategory.ALWAYS_COMMODITY.value: 0.070,
        InferenceCategory.SWITCH_TO_RE.value: 0.091,
        InferenceCategory.SWITCH_TO_COMMODITY.value: 0.000,
        InferenceCategory.MIXED.value: 0.031,
        InferenceCategory.OSCILLATING.value: 0.000,
        PREPEND_INSENSITIVE: 0.878,
    },
}

#: Bootstrap resamples for the CI of the mean.  Fixed (and seeded
#: deterministically per group) so summaries are reproducible.
BOOTSTRAP_RESAMPLES = 2000


def bootstrap_ci(
    values: List[float],
    rng: random.Random,
    resamples: int = BOOTSTRAP_RESAMPLES,
    alpha: float = 0.05,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI of the mean of *values*.

    Deterministic given *rng*'s state.  With a single value the
    interval collapses to that value (no resampling draws), which is
    the honest answer for a one-seed campaign.
    """
    if not values:
        raise ValueError("bootstrap_ci needs at least one value")
    if len(values) == 1:
        return values[0], values[0]
    n = len(values)
    means = []
    for _ in range(resamples):
        total = 0.0
        for _ in range(n):
            total += values[rng.randrange(n)]
        means.append(total / n)
    means.sort()
    lo_index = int((alpha / 2.0) * resamples)
    hi_index = min(resamples - 1, int((1.0 - alpha / 2.0) * resamples))
    return means[lo_index], means[hi_index]


@dataclass
class CategoryStats:
    """One inference category's per-seed fractions within one
    (experiment, scenario) group."""

    category: str
    fractions: List[float]
    ci_low: float = 0.0
    ci_high: float = 0.0
    paper: Optional[float] = None

    @property
    def mean(self) -> float:
        return sum(self.fractions) / len(self.fractions)

    @property
    def minimum(self) -> float:
        return min(self.fractions)

    @property
    def maximum(self) -> float:
        return max(self.fractions)

    def as_dict(self) -> dict:
        out = {
            "category": self.category,
            "fractions": list(self.fractions),
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "ci95": [self.ci_low, self.ci_high],
        }
        if self.paper is not None:
            out["paper"] = self.paper
        return out


@dataclass
class GroupSummary:
    """Aggregated stats for one (experiment, scenario) over its seeds."""

    experiment: str
    scenario: str
    seeds: List[int]
    cell_digests: List[str]
    stats: List[CategoryStats] = field(default_factory=list)
    mean_characterized: float = 0.0
    mean_excluded_loss: float = 0.0

    def stat(self, category: str) -> CategoryStats:
        for entry in self.stats:
            if entry.category == category:
                return entry
        raise KeyError(category)

    def as_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "scenario": self.scenario,
            "seeds": list(self.seeds),
            "cells": list(self.cell_digests),
            "mean_characterized": self.mean_characterized,
            "mean_excluded_loss": self.mean_excluded_loss,
            "categories": [s.as_dict() for s in self.stats],
        }


@dataclass
class CampaignSummary:
    """The whole campaign, aggregated — rendered as the sweep's
    summary table and serialised as ``campaign_summary.json``."""

    groups: List[GroupSummary] = field(default_factory=list)
    total_cells: int = 0

    def group(self, experiment: str, scenario: str) -> GroupSummary:
        for entry in self.groups:
            if (
                entry.experiment == experiment
                and entry.scenario == scenario
            ):
                return entry
        raise KeyError((experiment, scenario))

    def as_dict(self) -> dict:
        return {
            "schema": 1,
            "total_cells": self.total_cells,
            "groups": [g.as_dict() for g in self.groups],
            "paper_targets": PAPER_TABLE1_SHARES,
        }

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        lines = [
            "Campaign summary: %d cells, %d (experiment, scenario) "
            "group(s)" % (self.total_cells, len(self.groups)),
        ]
        for group in self.groups:
            lines.append("")
            lines.append(
                "%s / %s  (%d seed%s)"
                % (
                    group.experiment, group.scenario, len(group.seeds),
                    "" if len(group.seeds) == 1 else "s",
                )
            )
            lines.append(
                "  %-26s %7s %7s %7s %15s %7s"
                % ("category", "mean", "min", "max", "95% CI", "paper")
            )
            for stat in group.stats:
                paper = (
                    "%6.1f%%" % (100.0 * stat.paper)
                    if stat.paper is not None else "     --"
                )
                lines.append(
                    "  %-26s %6.1f%% %6.1f%% %6.1f%% [%5.1f%%,%5.1f%%] %s"
                    % (
                        stat.category,
                        100.0 * stat.mean,
                        100.0 * stat.minimum,
                        100.0 * stat.maximum,
                        100.0 * stat.ci_low,
                        100.0 * stat.ci_high,
                        paper,
                    )
                )
            lines.append(
                "  mean characterized prefixes: %.1f "
                "(excluded for loss: %.1f)"
                % (group.mean_characterized, group.mean_excluded_loss)
            )
        return "\n".join(lines)


def _cell_fraction(record: dict, category: str) -> float:
    return float(record.get("fractions", {}).get(category, 0.0))


def _prepend_insensitive_fraction(record: dict) -> float:
    return _cell_fraction(
        record, InferenceCategory.ALWAYS_RE.value
    ) + _cell_fraction(record, InferenceCategory.ALWAYS_COMMODITY.value)


def build_campaign_summary(records: Iterable[dict]) -> CampaignSummary:
    """Aggregate completed cell records into a :class:`CampaignSummary`.

    Pure function of the records: cells are grouped by (experiment,
    scenario) and ordered by seed then digest inside each group, the
    bootstrap RNG is seeded from the group key alone, and no timing
    fields are read — so resumed and uninterrupted campaigns summarise
    byte-identically.
    """
    by_group: Dict[Tuple[str, str], List[dict]] = {}
    for record in records:
        key = (str(record["experiment"]), str(record["scenario"]))
        by_group.setdefault(key, []).append(record)

    summary = CampaignSummary()
    for (experiment, scenario) in sorted(by_group):
        cells = sorted(
            by_group[(experiment, scenario)],
            key=lambda r: (int(r["seed"]), str(r["digest"])),
        )
        group = GroupSummary(
            experiment=experiment,
            scenario=scenario,
            seeds=[int(r["seed"]) for r in cells],
            cell_digests=[str(r["digest"]) for r in cells],
            mean_characterized=(
                sum(int(r["characterized"]) for r in cells) / len(cells)
            ),
            mean_excluded_loss=(
                sum(int(r["excluded_loss"]) for r in cells) / len(cells)
            ),
        )
        targets = PAPER_TABLE1_SHARES.get(experiment, {})
        rng = random.Random(
            derive_seed(0, "campaign-bootstrap:%s:%s" % (experiment, scenario))
        )
        names = [c.value for c in TABLE1_ORDER] + [PREPEND_INSENSITIVE]
        for name in names:
            if name == PREPEND_INSENSITIVE:
                fractions = [
                    _prepend_insensitive_fraction(r) for r in cells
                ]
            else:
                fractions = [_cell_fraction(r, name) for r in cells]
            ci_low, ci_high = bootstrap_ci(fractions, rng)
            group.stats.append(CategoryStats(
                category=name,
                fractions=fractions,
                ci_low=ci_low,
                ci_high=ci_high,
                paper=targets.get(name),
            ))
        summary.groups.append(group)
        summary.total_cells += len(cells)
    return summary
