"""Command-line interface.

``python -m repro <command>``:

- ``reproduce`` — run the full reproduction and print every table and
  figure (optionally writing probe/update JSONL files);
- ``sweep`` — run a campaign: a grid of (seed × scenario × experiment)
  cells with resumable digest-keyed checkpoints and a cross-seed
  summary (see :mod:`repro.experiment.campaign`);
- ``classify`` — re-run the per-prefix classification over a
  scamper-style JSONL results file produced by ``reproduce --export``
  or :func:`repro.dataio.dump_experiment_file`;
- ``explain`` — replay one experiment and print the evidence chain
  behind one probed prefix's inference category (per-round signals,
  winning decision steps, transitions — see
  :mod:`repro.core.explain`);
- ``age-model`` — print the Figure 7 state diagrams;
- ``funnel`` — print the §3.2 seed coverage funnel for a fresh
  ecosystem;
- ``status`` — show a sweep campaign's live progress from its
  heartbeat files (one-shot or ``--watch``; see
  :mod:`repro.experiment.status`);
- ``bench-diff`` — compare the latest benchmark runs against the
  recorded ``BENCH_HISTORY.jsonl`` trajectory and exit non-zero on a
  wall-time regression (see :mod:`repro.obs.benchtrack`; ``--json``
  emits the machine-readable diff);
- ``profile`` — render the hotspot tables of a ``--profile-out``
  artifact (or a campaign's per-cell profile directory — see
  :mod:`repro.obs.profile`).

``reproduce``, ``explain``, and ``sweep`` share identical common
options via argparse parent parsers: the run options
(``--seed/--workers/--shard-size/--fault-plan/--shard-timeout``) and
the observability options (``--log-level/--log-json/--metrics-out/
--metrics-format/--telemetry-out/--telemetry-interval/
--provenance-out/--provenance-capacity/--trace-out/--frontier-out/
--frontier-capacity/--profile-out``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from . import __version__
from .api import ExperimentSpec
from .core.age_model import simulate_age_cases
from .core.classify import InferenceCategory, RoundSignal, classify_signals
from .core.report import reproduce_paper
from .dataio import dump_experiment_file, dump_update_log
from .dataio.json_results import (
    load_experiment_records_file,
    signals_from_records,
)
from .errors import AnalysisError, ExperimentError, ReproError
from .experiment.status import DEFAULT_STALE_AFTER_SECONDS
from .obs import configure_logging, get_registry
from .obs.benchtrack import DEFAULT_THRESHOLD_PCT
from .obs.frontier import (
    DEFAULT_FRONTIER_CAPACITY,
    disable_frontier,
    enable_frontier,
)
from .obs.profile import disable_profiling, enable_profiling
from .obs.telemetry import DEFAULT_INTERVAL_SECONDS, TelemetrySampler
from .obs.provenance import (
    DEFAULT_CAPACITY,
    ProvenanceRecorder,
    disable_provenance,
    enable_provenance,
)
from .rng import SeedTree
from .seeds import select_seeds
from .topology.re_ecosystem import build_ecosystem


def _run_options() -> argparse.ArgumentParser:
    """Shared run options (``parents=`` parser; no help of its own)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0)
    parent.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the probing rounds (default: 1, "
             "serial); output is byte-identical at every worker count",
    )
    parent.add_argument(
        "--shard-size", type=int, default=None, metavar="K",
        help="prefixes per shard (default: split into 4 shards per "
             "worker); never changes results, only load balance",
    )
    parent.add_argument(
        "--fault-plan", metavar="SPEC",
        help="inject scripted faults derived from the seed, e.g. "
             "'crash=1,hang=1,loss=2,flap=1' (kinds: crash/hang/loss/"
             "flap).  Crashes and hangs are recovered without changing "
             "the report; loss bursts and link flaps change it "
             "deterministically",
    )
    parent.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard execution timeout; a shard exceeding it is "
             "retried and, as a last resort, re-run inline "
             "(default: no timeout)",
    )
    parent.add_argument(
        "--decision-backend", choices=("object", "array"),
        default="object",
        help="route-selection implementation: 'object' filters Route "
             "lists through the decision process, 'array' selects "
             "over structure-of-arrays decision columns; output is "
             "byte-identical under both (default: object)",
    )
    return parent


def _obs_options() -> argparse.ArgumentParser:
    """Shared observability options (``parents=`` parser)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        help="emit structured logs on stderr at this level "
             "(default: silent)",
    )
    parent.add_argument(
        "--log-json", action="store_true",
        help="emit logs as JSON lines instead of key=value",
    )
    parent.add_argument(
        "--metrics-out", metavar="PATH",
        help="write a metrics snapshot (engine/prober/runner counters "
             "and span histograms) after the run",
    )
    parent.add_argument(
        "--metrics-format", choices=("json", "openmetrics"),
        default="json",
        help="format for --metrics-out: json (default) or OpenMetrics "
             "text exposition for Prometheus tooling",
    )
    parent.add_argument(
        "--telemetry-out", metavar="FILE.jsonl",
        help="sample the metrics registry on a wall-clock interval "
             "during the run and append one JSON line per sample "
             "(append-only; a resumed campaign extends the series)",
    )
    parent.add_argument(
        "--telemetry-interval", type=float, default=None,
        metavar="SECONDS",
        help="seconds between telemetry samples (default: %.0f)"
             % DEFAULT_INTERVAL_SECONDS,
    )
    parent.add_argument(
        "--provenance-out", metavar="FILE.jsonl",
        help="record decision provenance (route selections, per-round "
             "prefix signals) and write it as JSON lines after the run",
    )
    parent.add_argument(
        "--provenance-capacity", type=int,
        default=None, metavar="N",
        help="provenance ring-buffer capacity in events (default: "
             "%d; oldest events drop first)" % DEFAULT_CAPACITY,
    )
    parent.add_argument(
        "--trace-out", metavar="FILE.json",
        help="write the run's span tree as Chrome trace-event JSON "
             "(loadable in chrome://tracing or Perfetto)",
    )
    parent.add_argument(
        "--frontier-out", metavar="FILE.jsonl",
        help="record convergence-frontier analytics (per-window "
             "frontier sizes, quiescence curves, per-round signal "
             "diffs) and write them as JSON lines after the run; "
             "output is byte-identical at every worker count",
    )
    parent.add_argument(
        "--frontier-capacity", type=int, default=None, metavar="N",
        help="frontier ring-buffer capacity in events (default: %d; "
             "oldest events drop first)" % DEFAULT_FRONTIER_CAPACITY,
    )
    parent.add_argument(
        "--profile-out", metavar="FILE.json",
        help="profile the run's phases with cProfile and write the "
             "hotspot payload (plus a binary FILE.json.pstats twin); "
             "render it later with 'repro profile FILE.json'",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'R&E Routing Policy: Inference and "
            "Implication' (IMC 2025)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version="repro %s" % __version__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run_options = _run_options()
    obs_options = _obs_options()

    reproduce = sub.add_parser(
        "reproduce", parents=[run_options, obs_options],
        help="run the full reproduction and print the report",
    )
    reproduce.add_argument("--scale", type=float, default=0.1,
                           help="population scale (1.0 = paper size)")
    reproduce.add_argument(
        "--export", metavar="DIR",
        help="also write probe/update JSONL files into DIR",
    )
    reproduce.add_argument(
        "--figures", action="store_true",
        help="also render Figures 3/5/8 as terminal plots",
    )
    reproduce.add_argument(
        "--degradations-out", metavar="FILE.json",
        help="write a JSON report of every shard retry/fallback the "
             "run survived (worker crashes, timeouts)",
    )

    explain = sub.add_parser(
        "explain", parents=[run_options, obs_options],
        help="explain one probed prefix's inference category",
    )
    explain.add_argument("prefix", help="probed prefix, e.g. 10.32.0.0/24")
    explain.add_argument("--scale", type=float, default=0.1,
                         help="population scale (1.0 = paper size)")
    explain.add_argument(
        "--experiment", choices=("surf", "internet2"), default="surf",
    )

    whatif = sub.add_parser(
        "whatif", parents=[run_options, obs_options],
        help="answer warm what-if queries (catchment per config, "
             "policy/link deltas) against one converged session",
    )
    whatif.add_argument("--scale", type=float, default=0.1,
                        help="population scale (1.0 = paper size)")
    whatif.add_argument(
        "--experiment", choices=("surf", "internet2"), default="surf",
    )
    whatif.add_argument(
        "--config", default=None, metavar="LABEL",
        help="prepend configuration to query, e.g. 2-0 (default: the "
             "schedule's first; the warm session steps forward in "
             "canonical order and keeps earlier configs queryable)",
    )
    whatif.add_argument(
        "--prefix", action="append", default=None, metavar="PFX",
        help="probed prefix to predict (repeatable; default: "
             "summarise every studied prefix)",
    )
    whatif.add_argument(
        "--delta", action="append", default=None, metavar="SPEC",
        help="what-if delta applied after the baseline prediction "
             "and re-predicted warm, e.g. prepend:re=3, "
             "localpref:64512:64513=150, flap:64512-64513, "
             "withdraw:commodity (repeatable, applied in order)",
    )
    whatif.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="per-prefix rows to print when summarising (default: 20)",
    )

    sweep = sub.add_parser(
        "sweep", parents=[run_options, obs_options],
        help="run a campaign grid of (seed x scenario x experiment) "
             "cells with resumable checkpoints",
    )
    sweep.add_argument(
        "--campaign-dir", required=True, metavar="DIR",
        help="campaign state directory (cell checkpoints land in "
             "DIR/cells, the aggregate in DIR/campaign_summary.json); "
             "re-invoking with the same directory resumes, skipping "
             "completed cells",
    )
    sweep.add_argument("--scale", type=float, default=0.1,
                       help="population scale (1.0 = paper size)")
    sweep.add_argument(
        "--seeds", default="0", metavar="LIST",
        help="seeds to sweep: comma list and/or ranges, e.g. "
             "'0,1,2' or '0-4' or '0,5-8' (default: 0).  --seed is "
             "ignored by sweep",
    )
    sweep.add_argument(
        "--scenarios", default="baseline", metavar="LIST",
        help="comma list of ecosystem scenario presets, or 'all' "
             "(default: baseline; see repro.topology SCENARIO_PRESETS)",
    )
    sweep.add_argument(
        "--experiments", default="surf,internet2", metavar="LIST",
        help="comma list of experiments (default: surf,internet2)",
    )
    sweep.add_argument(
        "--campaign-workers", type=int, default=1, metavar="N",
        help="cell processes in the campaign pool (default: 1, "
             "serial cells).  While > 1, each cell probes serially — "
             "the shard pool (--workers) is used inside cells only "
             "when the campaign pool is idle",
    )
    sweep.add_argument(
        "--no-resume", action="store_true",
        help="recompute every cell even when its checkpoint exists",
    )
    sweep.add_argument(
        "--backend", choices=("inline", "fork"), default=None,
        help="force the scheduler backend for cell dispatch "
             "(default: resolve from --campaign-workers and the "
             "platform)",
    )

    classify = sub.add_parser(
        "classify", help="classify prefixes from a JSONL results file"
    )
    classify.add_argument("results", help="probe JSONL file")
    classify.add_argument(
        "--summary-only", action="store_true",
        help="print only the category counts",
    )

    sub.add_parser("age-model", help="print the Figure 7 state diagrams")

    funnel = sub.add_parser(
        "funnel", help="print the seed coverage funnel (§3.2)"
    )
    funnel.add_argument("--scale", type=float, default=0.1)
    funnel.add_argument("--seed", type=int, default=0)

    status = sub.add_parser(
        "status",
        help="show a sweep campaign's progress from its heartbeat "
             "files (works while the sweep runs in another process)",
    )
    status.add_argument(
        "campaign_dir", metavar="DIR",
        help="the --campaign-dir of the sweep to inspect",
    )
    status.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-render every SECONDS until the campaign completes "
             "(default: print once and exit)",
    )
    status.add_argument(
        "--stale-after", type=float,
        default=DEFAULT_STALE_AFTER_SECONDS, metavar="SECONDS",
        help="flag a running cell whose heartbeat is older than this "
             "as stale / candidate-dead (default: %.0f)"
             % DEFAULT_STALE_AFTER_SECONDS,
    )
    status.add_argument(
        "--no-cells", action="store_true",
        help="omit the per-cell table (grid summary only)",
    )

    bench_diff = sub.add_parser(
        "bench-diff",
        help="compare the latest benchmark runs against the recorded "
             "BENCH_HISTORY.jsonl trajectory; exits 1 on regression",
    )
    bench_diff.add_argument(
        "--history", metavar="FILE.jsonl", default=None,
        help="history file (default: BENCH_HISTORY.jsonl in "
             "$REPRO_BENCH_OUT or the working directory)",
    )
    bench_diff.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD_PCT,
        metavar="PCT",
        help="regression threshold: latest more than PCT%% over the "
             "baseline median fails (default: %.0f)"
             % DEFAULT_THRESHOLD_PCT,
    )
    bench_diff.add_argument(
        "--json", action="store_true",
        help="emit the diff as one JSON document instead of the "
             "fixed-width table (same exit codes)",
    )

    profile = sub.add_parser(
        "profile",
        help="render the hotspot tables of a --profile-out artifact "
             "(or a directory of campaign per-cell profiles)",
    )
    profile.add_argument(
        "artifact", metavar="PATH",
        help="a profile JSON file written by --profile-out, or a "
             "directory (e.g. a campaign's cells/) whose *.json "
             "profile payloads are merged",
    )
    profile.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="rows per hotspot table (default: the artifact's top_n)",
    )
    return parser


def _check_output_paths(*paths: Optional[str]) -> Optional[str]:
    """Fail on unwritable output paths now, not after the full run."""
    for path in paths:
        if not path:
            continue
        try:
            with open(path, "a", encoding="utf-8"):
                pass
        except OSError as error:
            return "cannot write %s: %s" % (path, error)
    return None


def _validate_run_args(args) -> Optional[str]:
    """Numeric sanity for the shared run/obs options (message uses the
    flag spelling, not the spec field name)."""
    if args.workers < 1:
        return "--workers must be >= 1"
    if args.shard_size is not None and args.shard_size < 1:
        return "--shard-size must be >= 1"
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        return "--shard-timeout must be positive"
    if args.provenance_capacity is not None and args.provenance_capacity < 1:
        return "--provenance-capacity must be >= 1"
    if args.telemetry_interval is not None and args.telemetry_interval <= 0:
        return "--telemetry-interval must be positive"
    if args.frontier_capacity is not None and args.frontier_capacity < 1:
        return "--frontier-capacity must be >= 1"
    return None


def _configure_obs(args) -> None:
    if args.log_level:
        configure_logging(level=args.log_level, json_lines=args.log_json)


def _write_metrics(args) -> None:
    if not args.metrics_out:
        return
    if getattr(args, "metrics_format", "json") == "openmetrics":
        from .obs.export import write_openmetrics

        families = write_openmetrics(args.metrics_out)
        print(
            "wrote %d metric families (OpenMetrics) to %s"
            % (families, args.metrics_out)
        )
        return
    with open(args.metrics_out, "w", encoding="utf-8") as stream:
        stream.write(get_registry().to_json())
        stream.write("\n")
    print("wrote metrics snapshot to %s" % args.metrics_out)


def _start_telemetry(args) -> Optional[TelemetrySampler]:
    """Start the background sampler when ``--telemetry-out`` was given
    (returns ``None`` otherwise)."""
    if not args.telemetry_out:
        return None
    sampler = TelemetrySampler(
        interval=args.telemetry_interval or DEFAULT_INTERVAL_SECONDS,
        out_path=args.telemetry_out,
    )
    return sampler.start()


def _stop_telemetry(sampler: Optional[TelemetrySampler]) -> None:
    if sampler is None:
        return
    lines = sampler.stop()
    # Stderr, like the degradation notice: the sample count depends on
    # wall-clock timing, so stdout stays byte-identical with and
    # without --telemetry-out.
    print(
        "wrote %d telemetry sample(s) to %s" % (lines, sampler.out_path),
        file=sys.stderr,
    )


def _write_trace(args) -> None:
    if args.trace_out:
        from .obs.export import write_chrome_trace

        count = write_chrome_trace(args.trace_out)
        print("wrote %d trace events to %s" % (count, args.trace_out))


def _export_recorder(recorder, path: str) -> None:
    count = recorder.export_jsonl_file(path)
    suffix = (
        " (%d older events dropped by the ring)" % recorder.dropped
        if recorder.dropped else ""
    )
    print("wrote %d provenance events to %s%s" % (count, path, suffix))


def _enable_frontier(args):
    """Install the process-wide frontier trace when ``--frontier-out``
    was given (returns ``None`` otherwise)."""
    if not args.frontier_out:
        return None
    return enable_frontier(
        capacity=args.frontier_capacity or DEFAULT_FRONTIER_CAPACITY
    )


def _export_frontier(trace, path: str) -> None:
    # Stdout, like provenance: the event stream — and therefore the
    # count — is inside the byte-identity contract, so this line is
    # identical at every worker count and decision backend.
    count = trace.export_jsonl_file(path)
    suffix = (
        " (%d older events dropped by the ring)" % trace.dropped
        if trace.dropped else ""
    )
    print("wrote %d frontier events to %s%s" % (count, path, suffix))


def _enable_profile(args):
    """Install the process-wide phase profiler when ``--profile-out``
    was given (returns ``None`` otherwise)."""
    if not args.profile_out:
        return None
    return enable_profiling()


def _export_profile(profiler, path: str) -> None:
    from .obs.profile import export_profile

    payload = export_profile(profiler, path)
    # Stderr, like telemetry: profile contents are timings — execution
    # metadata — so stdout stays byte-identical with and without
    # --profile-out.
    print(
        "wrote phase profile (%d phases) to %s"
        % (len(payload.get("phases", {})), path),
        file=sys.stderr,
    )


def _build_spec(args, experiment: str = "surf") -> ExperimentSpec:
    """The shared CLI args as an :class:`ExperimentSpec` (validates
    the fault spec and scenario/scale in one place)."""
    return ExperimentSpec(
        experiment=experiment,
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
        shard_size=args.shard_size,
        shard_timeout=args.shard_timeout,
        fault_spec=args.fault_plan or "",
        decision_backend=args.decision_backend,
    )


def _cmd_reproduce(args) -> int:
    _configure_obs(args)
    problem = _check_output_paths(
        args.metrics_out, args.provenance_out, args.trace_out,
        args.degradations_out, args.telemetry_out, args.frontier_out,
        args.profile_out,
    ) or _validate_run_args(args)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    try:
        spec = _build_spec(args)
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    fault_plan = spec.fault_plan()
    recorder = None
    if args.provenance_out:
        recorder = enable_provenance(
            capacity=args.provenance_capacity or DEFAULT_CAPACITY
        )
    frontier = _enable_frontier(args)
    profiler = _enable_profile(args)
    sampler = _start_telemetry(args)
    try:
        report = reproduce_paper(
            spec.ecosystem_config(), seed=spec.seed,
            workers=spec.workers, shard_size=spec.shard_size,
            fault_plan=fault_plan, shard_timeout=spec.shard_timeout,
            decision_backend=spec.decision_backend,
        )
    finally:
        if recorder is not None:
            disable_provenance()
        if frontier is not None:
            disable_frontier()
        if profiler is not None:
            disable_profiling()
        _stop_telemetry(sampler)
    print(report.render())
    if args.figures:
        from .core.figures import (
            render_churn_figure,
            render_region_map,
            render_switch_cdf_figure,
        )

        print("\nFigure 3 (Internet2 churn):")
        print(render_churn_figure(report.churn_internet2,
                                  report.internet2_result.round_times))
        print("\n" + render_region_map(report.figure5))
        print("\n" + render_region_map(report.figure5, us_states=True))
        print("\nFigure 8 (SURF):")
        print(render_switch_cdf_figure(report.figure8_surf))
        print("\nFigure 8 (Internet2):")
        print(render_switch_cdf_figure(report.figure8_internet2))
    if args.export:
        os.makedirs(args.export, exist_ok=True)
        for result in (report.surf_result, report.internet2_result):
            path = os.path.join(
                args.export, "%s_probes.jsonl" % result.experiment
            )
            count = dump_experiment_file(result, path)
            print("wrote %d records to %s" % (count, path))
            updates_path = os.path.join(
                args.export, "%s_updates.jsonl" % result.experiment
            )
            with open(updates_path, "w", encoding="utf-8") as stream:
                count = dump_update_log(result.update_log, stream)
            print("wrote %d records to %s" % (count, updates_path))
    _write_metrics(args)
    if recorder is not None:
        _export_recorder(recorder, args.provenance_out)
    if frontier is not None:
        _export_frontier(frontier, args.frontier_out)
    if profiler is not None:
        _export_profile(profiler, args.profile_out)
    _write_trace(args)
    degradations = [
        record.as_dict()
        for result in (report.surf_result, report.internet2_result)
        for record in result.degradations
    ]
    if degradations:
        # Stderr, not stdout: degradations describe how the run
        # executed, never what it measured — stdout stays
        # byte-identical to a fault-free run's.
        print(
            "survived %d shard degradation(s) "
            "(%d retried, %d inline fallbacks); results unaffected"
            % (
                len(degradations),
                sum(1 for d in degradations if d["action"] == "retry"),
                sum(1 for d in degradations if d["action"] == "fallback"),
            ),
            file=sys.stderr,
        )
    if args.degradations_out:
        with open(args.degradations_out, "w", encoding="utf-8") as stream:
            json.dump(
                {
                    "fault_plan": fault_plan.counts() if fault_plan else {},
                    "degradations": degradations,
                },
                stream, indent=2, sort_keys=True,
            )
            stream.write("\n")
        print("wrote degradation report to %s" % args.degradations_out)
    return 0


def _parse_seed_list(text: str) -> List[int]:
    """``'0,2,5-8'`` -> ``[0, 2, 5, 6, 7, 8]`` (order kept, no dups)."""
    seeds: List[int] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        # A range like 3-7 (negatives like -2 are a plain seed).
        if "-" in chunk[1:]:
            start_text, _, stop_text = chunk[1:].partition("-")
            start = int(chunk[0] + start_text)
            stop = int(stop_text)
            if stop < start:
                raise ValueError("bad seed range %r" % chunk)
            span = range(start, stop + 1)
        else:
            span = (int(chunk),)
        for seed in span:
            if seed not in seeds:
                seeds.append(seed)
    if not seeds:
        raise ValueError("no seeds in %r" % text)
    return seeds


def _cmd_sweep(args) -> int:
    from .experiment.campaign import (
        CampaignRunner,
        known_scenarios,
        plan_grid,
    )

    _configure_obs(args)
    problem = _check_output_paths(
        args.metrics_out, args.provenance_out, args.trace_out,
        args.telemetry_out, args.frontier_out, args.profile_out,
    ) or _validate_run_args(args)
    if not problem and args.campaign_workers < 1:
        problem = "--campaign-workers must be >= 1"
    if problem:
        print(problem, file=sys.stderr)
        return 2
    try:
        seeds = _parse_seed_list(args.seeds)
    except ValueError as error:
        print("bad --seeds: %s" % error, file=sys.stderr)
        return 2
    if args.scenarios.strip() == "all":
        scenarios = known_scenarios()
    else:
        scenarios = [
            s.strip() for s in args.scenarios.split(",") if s.strip()
        ]
    experiments = [
        e.strip() for e in args.experiments.split(",") if e.strip()
    ]
    try:
        specs = plan_grid(
            seeds=seeds, scenarios=scenarios, experiments=experiments,
            scale=args.scale, workers=args.workers,
            shard_size=args.shard_size, shard_timeout=args.shard_timeout,
            fault_spec=args.fault_plan or "",
            decision_backend=args.decision_backend,
        )
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    recorder = None
    if args.provenance_out:
        recorder = enable_provenance(
            capacity=args.provenance_capacity or DEFAULT_CAPACITY
        )
    frontier = _enable_frontier(args)
    profiler = _enable_profile(args)
    runner = CampaignRunner(
        specs, args.campaign_dir,
        pool_workers=args.campaign_workers,
        resume=not args.no_resume,
        backend=args.backend,
    )
    sampler = _start_telemetry(args)
    try:
        result = runner.run()
    except ExperimentError as error:
        print(str(error), file=sys.stderr)
        return 1
    finally:
        if recorder is not None:
            disable_provenance()
        if frontier is not None:
            disable_frontier()
        if profiler is not None:
            disable_profiling()
        _stop_telemetry(sampler)
    print(result.summary.render())
    print()
    print(
        "campaign: %d cell(s) computed, %d resumed from checkpoints "
        "(%.1f cells/minute); summary written to %s"
        % (
            result.completed, result.skipped, result.cells_per_minute,
            runner.summary_path,
        )
    )
    _write_metrics(args)
    if recorder is not None:
        _export_recorder(recorder, args.provenance_out)
    if frontier is not None:
        _export_frontier(frontier, args.frontier_out)
    if profiler is not None:
        _export_profile(profiler, args.profile_out)
    _write_trace(args)
    return 0


def _cmd_explain(args) -> int:
    from .core.explain import explain_prefix

    _configure_obs(args)
    problem = _check_output_paths(
        args.metrics_out, args.provenance_out, args.trace_out,
        args.telemetry_out, args.frontier_out, args.profile_out,
    ) or _validate_run_args(args)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    recorder = None
    if args.provenance_out:
        # explain keeps a filtered recorder (only this prefix's
        # events), so the export is the prefix's full evidence chain.
        recorder = ProvenanceRecorder(
            capacity=args.provenance_capacity or DEFAULT_CAPACITY,
            prefix_filter=[args.prefix],
        )
    try:
        spec = _build_spec(args, experiment=args.experiment)
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    frontier = _enable_frontier(args)
    profiler = _enable_profile(args)
    sampler = _start_telemetry(args)
    try:
        narrative = explain_prefix(
            args.prefix,
            experiment=args.experiment,
            scale=args.scale,
            seed=args.seed,
            workers=spec.workers,
            shard_size=spec.shard_size,
            fault_plan=spec.fault_plan(),
            shard_timeout=spec.shard_timeout,
            recorder=recorder,
            decision_backend=spec.decision_backend,
        )
    except ValueError as error:
        # Unparseable prefix text.
        print("bad prefix: %s" % error, file=sys.stderr)
        return 2
    except AnalysisError as error:
        print(str(error), file=sys.stderr)
        return 1
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    finally:
        if frontier is not None:
            disable_frontier()
        if profiler is not None:
            disable_profiling()
        _stop_telemetry(sampler)
    print(narrative)
    _write_metrics(args)
    if recorder is not None:
        _export_recorder(recorder, args.provenance_out)
    if frontier is not None:
        _export_frontier(frontier, args.frontier_out)
    if profiler is not None:
        _export_profile(profiler, args.profile_out)
    _write_trace(args)
    return 0


def _print_predictions(title, predictions, limit) -> None:
    """Deterministic what-if output: signal tallies, then per-prefix
    rows (capped at *limit*; 0 suppresses them)."""
    counts: dict = {}
    for prediction in predictions:
        counts[prediction.signal] = counts.get(prediction.signal, 0) + 1
    print("%s @ %s: %d prefix(es)" % (
        title, predictions[0].config if predictions else "-",
        len(predictions),
    ))
    for signal in ("re", "commodity", "both", "none"):
        if counts.get(signal):
            print("  %-10s %6d" % (signal, counts[signal]))
    shown = predictions[: max(0, limit)]
    for prediction in shown:
        print("  %-22s %s" % (prediction.prefix, prediction.signal))
    if len(predictions) > len(shown):
        print("  ... %d more" % (len(predictions) - len(shown)))


def _cmd_whatif(args) -> int:
    from .whatif import WhatIfSession, parse_delta

    _configure_obs(args)
    problem = _check_output_paths(
        args.metrics_out, args.provenance_out, args.trace_out,
        args.telemetry_out, args.frontier_out, args.profile_out,
    ) or _validate_run_args(args)
    if problem is None and args.limit < 0:
        problem = "--limit must be >= 0"
    if problem:
        print(problem, file=sys.stderr)
        return 2
    try:
        spec = _build_spec(args, experiment=args.experiment)
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    frontier = _enable_frontier(args)
    sampler = _start_telemetry(args)
    started = time.perf_counter()
    try:
        session = WhatIfSession(spec)
        if args.config:
            session.advance_to_config(args.config)
        warm_seconds = time.perf_counter() - started
        prefixes = args.prefix or [
            str(plan.prefix)
            for plan in sorted(
                session.ecosystem.studied_prefixes(),
                key=lambda plan: (plan.prefix.network, plan.prefix.length),
            )
        ]
        query_start = time.perf_counter()
        _print_predictions(
            "baseline", session.predict_batch(prefixes), args.limit
        )
        for delta_text in args.delta or ():
            delta = parse_delta(delta_text, session)
            outcome = session.apply(delta)
            print(
                "applied %s: dirty_prefixes=%d touched_ases=%d "
                "runs=%d messages=%d"
                % (
                    delta_text, len(outcome.dirty_prefixes),
                    outcome.touched_ases, len(outcome.stats),
                    outcome.messages_delivered,
                )
            )
        if args.delta:
            _print_predictions(
                "after-deltas", session.predict_batch(prefixes),
                args.limit,
            )
        query_seconds = time.perf_counter() - query_start
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    finally:
        _stop_telemetry(sampler)
    # Wall timings are execution metadata: stderr, not the
    # deterministic stdout report.
    print(
        "warm-up %.2fs; %d warm quer%s in %.1fms"
        % (
            warm_seconds, len(prefixes),
            "y" if len(prefixes) == 1 else "ies",
            query_seconds * 1e3,
        ),
        file=sys.stderr,
    )
    _write_metrics(args)
    if frontier is not None:
        _export_frontier(frontier, args.frontier_out)
    _write_trace(args)
    return 0


_SIGNAL_TABLE = {
    "re": RoundSignal.RE,
    "commodity": RoundSignal.COMMODITY,
    "both": RoundSignal.BOTH,
    "none": RoundSignal.NONE,
}


def _cmd_classify(args) -> int:
    records = load_experiment_records_file(args.results)
    signals = signals_from_records(records)
    counts = {}
    for prefix_text in sorted(signals):
        category = classify_signals(
            [_SIGNAL_TABLE[s] for s in signals[prefix_text]]
        )
        counts[category] = counts.get(category, 0) + 1
        if not args.summary_only:
            print("%-22s %s" % (prefix_text, category.value))
    total = sum(counts.values())
    print("\n%d prefixes:" % total)
    for category in InferenceCategory:
        if counts.get(category):
            print(
                "  %-26s %6d (%.1f%%)"
                % (category.value, counts[category],
                   100.0 * counts[category] / total)
            )
    return 0


def _cmd_age_model(_args) -> int:
    print("Figure 7: route selection per configuration "
          "(R = R&E, C = commodity)\n")
    for case in simulate_age_cases():
        print(case.render())
    return 0


def _cmd_funnel(args) -> int:
    ecosystem = build_ecosystem(
        ExperimentSpec(seed=args.seed, scale=args.scale).ecosystem_config(),
        seed=args.seed,
    )
    plan = select_seeds(ecosystem, seed_tree=SeedTree(args.seed))
    for row in plan.funnel.as_rows():
        print(row)
    return 0


def _cmd_status(args) -> int:
    from .experiment.status import CampaignStatus

    if args.stale_after <= 0:
        print("--stale-after must be positive", file=sys.stderr)
        return 2
    if args.watch is not None and args.watch <= 0:
        print("--watch must be positive", file=sys.stderr)
        return 2
    directory = args.campaign_dir
    if not os.path.isdir(directory):
        print("not a directory: %s" % directory, file=sys.stderr)
        return 2

    def load() -> CampaignStatus:
        return CampaignStatus.load(directory, stale_after=args.stale_after)

    status = load()
    if status.total == 0:
        print(
            "no campaign state in %s (expected grid.json, cells/ or "
            "status/ — is this a --campaign-dir?)" % directory,
            file=sys.stderr,
        )
        return 2
    if args.watch is None:
        print(status.render(verbose=not args.no_cells))
        return 1 if status.count("failed") else 0
    import time
    while True:
        print(status.render(verbose=not args.no_cells))
        sys.stdout.flush()
        if status.complete:
            return 0
        if status.count("failed") and status.count("running") == 0:
            # Nothing is moving and something failed: watching further
            # cannot change the outcome.
            return 1
        print()
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 130
        status = load()


def _cmd_bench_diff(args) -> int:
    from .obs import benchtrack

    if args.threshold < 0:
        print("--threshold must be >= 0", file=sys.stderr)
        return 2
    path = args.history or benchtrack.history_path()
    try:
        entries = benchtrack.load_history(path)
    except FileNotFoundError:
        print(
            "no benchmark history at %s (run the benchmarks to seed "
            "it)" % path,
            file=sys.stderr,
        )
        return 2
    if not entries:
        print("benchmark history %s is empty" % path, file=sys.stderr)
        return 2
    deltas = benchtrack.diff_latest(entries, threshold_pct=args.threshold)
    if args.json:
        print(benchtrack.render_diff_json(deltas, args.threshold))
    else:
        print(benchtrack.render_diff(deltas, args.threshold))
    return 1 if any(delta.regressed for delta in deltas) else 0


def _cmd_profile(args) -> int:
    from .obs.profile import DEFAULT_TOP_N, load_profile, render_profile

    if args.top is not None and args.top < 1:
        print("--top must be >= 1", file=sys.stderr)
        return 2
    try:
        payload = load_profile(args.artifact)
    except FileNotFoundError:
        print("no profile artifact at %s" % args.artifact, file=sys.stderr)
        return 2
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(render_profile(payload, top=args.top or DEFAULT_TOP_N))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "reproduce": _cmd_reproduce,
        "sweep": _cmd_sweep,
        "classify": _cmd_classify,
        "explain": _cmd_explain,
        "whatif": _cmd_whatif,
        "age-model": _cmd_age_model,
        "funnel": _cmd_funnel,
        "status": _cmd_status,
        "bench-diff": _cmd_bench_diff,
        "profile": _cmd_profile,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
