"""repro — reproduction of "R&E Routing Policy: Inference and Implication".

The package layers, bottom-up:

- :mod:`repro.netutil`, :mod:`repro.rng`, :mod:`repro.simtime` — utilities;
- :mod:`repro.bgp` — the AS-level BGP simulator (decision process,
  policies, event-driven engine, bulk fastpath, RFD);
- :mod:`repro.topology` — topologies, the paper-figure scenarios, and
  the synthetic R&E ecosystem generator;
- :mod:`repro.seeds` / :mod:`repro.probing` — the §3 measurement
  substrate (ISI/Censys analogues, scamper-like prober, return-path
  walker);
- :mod:`repro.experiment` — the nine-configuration experiment runner;
- :mod:`repro.collectors` / :mod:`repro.geo` — public BGP views and
  geolocation;
- :mod:`repro.core` — the paper's contribution: inference and every
  table/figure analysis;
- :mod:`repro.dataio` — scamper-style JSON results.

Quickest start::

    from repro import reproduce_paper, REEcosystemConfig
    report = reproduce_paper(REEcosystemConfig(scale=0.1), seed=1)
    print(report.render())
"""

__version__ = "1.0.0"

from .netutil import Prefix, format_address, parse_address
from .obs import (
    MetricsRegistry,
    configure_logging,
    get_logger,
    get_registry,
    span,
    use_registry,
)
from .rng import SeedTree
from .bgp import (
    ASPath,
    Announcement,
    DecisionProcess,
    PropagationEngine,
    Rel,
    Route,
    RoutingPolicy,
    propagate_fastpath,
)
from .topology import (
    ASClass,
    REEcosystemConfig,
    Topology,
    build_columbia_scenario,
    build_ecosystem,
    build_ixp_scenario,
    build_niks_scenario,
)
from .seeds import select_seeds
from .experiment import (
    CampaignRunner,
    ExperimentRunner,
    plan_grid,
    run_experiment_pair,
)
from .api import (
    ExecutionPolicy,
    ExperimentSpec,
    run_campaign,
    run_experiment,
)
from .core import (
    InferenceCategory,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_figure5,
    build_figure8,
    classify_experiment,
)
from .core.report import PaperReproduction, reproduce_paper

__all__ = [
    "Prefix",
    "format_address",
    "parse_address",
    "SeedTree",
    "ASPath",
    "Announcement",
    "DecisionProcess",
    "PropagationEngine",
    "Rel",
    "Route",
    "RoutingPolicy",
    "propagate_fastpath",
    "ASClass",
    "REEcosystemConfig",
    "Topology",
    "build_columbia_scenario",
    "build_ecosystem",
    "build_ixp_scenario",
    "build_niks_scenario",
    "select_seeds",
    "ExecutionPolicy",
    "ExperimentRunner",
    "ExperimentSpec",
    "run_experiment",
    "run_campaign",
    "run_experiment_pair",
    "CampaignRunner",
    "plan_grid",
    "InferenceCategory",
    "classify_experiment",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_figure5",
    "build_figure8",
    "PaperReproduction",
    "reproduce_paper",
    "MetricsRegistry",
    "get_registry",
    "use_registry",
    "span",
    "get_logger",
    "configure_logging",
    "__version__",
]
