"""Warm what-if queries over the delta convergence engine.

A :class:`WhatIfSession` keeps one converged network warm and answers
catchment-style questions — "which origin (and therefore which signal
category) does prefix P land on under configuration C, or after policy
change X?" — in microseconds, by walking frozen RIB snapshots and
applying :meth:`~repro.bgp.engine.PropagationEngine.apply_delta`
deltas instead of re-simulating the experiment from scratch.

The session replays the experiment's control-plane history exactly as
:class:`~repro.experiment.runner.ExperimentRunner` does (same seeding,
same announcement order, same soak clock), minus probing: route ages
are semantically meaningful (the OLDEST_ROUTE tie-break), so warm
state is only byte-identical to the experiment's when the full history
is replayed in canonical order.  Configurations therefore only step
*forward*; earlier configurations stay queryable through cached
snapshots.

The cold path stays authoritative: :meth:`WhatIfSession.replay_cold`
rebuilds a fresh ecosystem and engine and replays the session's
journal from scratch, and the differential tests assert the warm RIB
state equals the cold one byte-for-byte.  (A fresh *ecosystem*, not
just a fresh engine — policy deltas such as
:class:`~repro.bgp.engine.LocalprefEdit` mutate topology state shared
by every engine built over it.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from .api import ExperimentSpec
from .bgp.arraytable import use_decision_backend
from .bgp.engine import (
    AnnounceDelta,
    DeltaOutcome,
    LinkFlap,
    LocalprefEdit,
    PrependChange,
    PropagationEngine,
    WithdrawDelta,
)
from .errors import ExperimentError
from .netutil import Prefix
from .obs import get_logger
from .obs.provenance import signal_from_kinds
from .probing.forwarding import ForwardingOutcome, RibSnapshot, engine_rib
from .probing.host import MeasurementHost
from .rng import SeedTree
from .topology.re_ecosystem import Ecosystem, build_ecosystem

__all__ = [
    "Prediction",
    "WhatIfSession",
    "parse_delta",
]

_log = get_logger("repro.whatif")


@dataclass(frozen=True)
class Prediction:
    """One what-if answer: where a probed prefix's responses land.

    ``deliveries`` maps each alive system (by address) to the
    announcement origin its return path terminates at (None when the
    walk fails to deliver); ``signal`` classifies the set of reached
    interface kinds exactly as round classification does
    (:func:`~repro.obs.provenance.signal_from_kinds`)."""

    prefix: str
    config: str
    signal: str
    deliveries: Tuple[Tuple[int, Optional[int]], ...]


class WhatIfSession:
    """Warm routing state for one experiment, queryable per config.

    Only the spec's *simulation* fields matter here (seed, scale,
    scenario, overrides, configs, decision backend); execution fields
    (workers, shard options) describe probing fan-out, which a what-if
    session never performs.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        ecosystem: Optional[Ecosystem] = None,
    ) -> None:
        self.spec = spec
        if ecosystem is None:
            ecosystem = build_ecosystem(
                spec.ecosystem_config(), seed=spec.seed
            )
        self.ecosystem = ecosystem
        self.schedule = spec.schedule() or _default_schedule()
        self.re_origin = ecosystem.re_origin_for(spec.experiment)
        self.commodity_origin = ecosystem.commodity_origin
        self.host = MeasurementHost.for_experiment(
            ecosystem.measurement_prefix,
            self.re_origin,
            self.commodity_origin,
            spec.experiment,
        )
        # Same seeding convention as the runner, so the warm control
        # plane is the experiment's control plane.
        tree = SeedTree(spec.run_seed).child(
            "experiment-%s" % spec.experiment
        )
        self._engine = PropagationEngine(
            ecosystem.topology, tree,
            decision_backend=spec.decision_backend,
        )
        #: Everything needed to rebuild this state cold, in order:
        #: ("config", label) steps and ("delta", delta) edits.
        self._journal: List[Tuple[str, object]] = []
        self._snapshots: Dict[str, RibSnapshot] = {}
        self._config_index = 0
        self._warm_up()

    # ----- warm-up ----------------------------------------------------

    def _warm_up(self) -> None:
        """Phases 0/1 of the experiment: commodity soaks alone, then
        the first configuration goes up (runner order, runner clock)."""
        engine = self._engine
        schedule = self.schedule
        prefix = self.ecosystem.measurement_prefix
        with use_decision_backend(self.spec.decision_backend):
            engine.apply_delta(AnnounceDelta(
                origin_asn=self.commodity_origin, prefix=prefix,
                tag="commodity",
            ))
            engine.advance_to(schedule.commodity_lead_seconds)
            first_re, first_comm = schedule.parsed_configs()[0]
            if first_comm != 0:
                engine.apply_delta(AnnounceDelta(
                    origin_asn=self.commodity_origin, prefix=prefix,
                    default_prepends=first_comm, tag="commodity",
                ))
            engine.apply_delta(AnnounceDelta(
                origin_asn=self.re_origin, prefix=prefix,
                default_prepends=first_re, tag="re",
            ))
            engine.advance_to(engine.now + schedule.initial_soak_seconds)
        self._snapshot_current()

    # ----- configuration stepping -------------------------------------

    @property
    def current_config(self) -> str:
        return self.schedule.configs[self._config_index]

    @property
    def engine(self) -> PropagationEngine:
        """The warm engine (read-mostly; mutate via :meth:`apply`)."""
        return self._engine

    def advance_to_config(self, config: str) -> None:
        """Step the warm state forward to *config* (canonical schedule
        order; earlier configs stay queryable via cached snapshots)."""
        configs = list(self.schedule.configs)
        if config not in configs:
            raise ExperimentError(
                "unknown config %r (schedule has %s)"
                % (config, ", ".join(configs))
            )
        target = configs.index(config)
        if target < self._config_index:
            raise ExperimentError(
                "cannot step backwards from %s to %s — route ages make "
                "history order semantic; query earlier configs through "
                "their cached snapshots instead"
                % (self.current_config, config)
            )
        parsed = self.schedule.parsed_configs()
        engine = self._engine
        prefix = self.ecosystem.measurement_prefix
        with use_decision_backend(self.spec.decision_backend):
            while self._config_index < target:
                index = self._config_index + 1
                re_p, comm_p = parsed[index]
                prev_re, prev_comm = parsed[index - 1]
                dirty = 0
                if re_p != prev_re:
                    outcome = engine.apply_delta(PrependChange(
                        origin_asn=self.re_origin, prefix=prefix,
                        prepends=re_p,
                    ))
                    dirty += len(outcome.dirty_prefixes)
                if comm_p != prev_comm:
                    outcome = engine.apply_delta(PrependChange(
                        origin_asn=self.commodity_origin, prefix=prefix,
                        prepends=comm_p,
                    ))
                    dirty += len(outcome.dirty_prefixes)
                engine.advance_to(engine.now + self.schedule.soak_seconds)
                self._config_index = index
                self._journal.append(("config", configs[index]))
                self._snapshot_current()
                if _log.is_enabled_for("debug"):
                    _log.debug(
                        "what-if config step",
                        config=configs[index], dirty_prefixes=dirty,
                    )

    # ----- free-form deltas -------------------------------------------

    def apply(self, delta) -> DeltaOutcome:
        """Apply one free-form delta to the warm state (journaled for
        cold replay).  Snapshots of earlier configs describe a network
        the delta has now changed, so the cache is dropped and only the
        post-delta state stays queryable."""
        with use_decision_backend(self.spec.decision_backend):
            outcome = self._engine.apply_delta(delta)
        self._journal.append(("delta", delta))
        self._snapshots.clear()
        self._snapshot_current()
        return outcome

    # ----- queries ----------------------------------------------------

    def predict(
        self,
        prefix: Union[Prefix, str],
        config: Optional[str] = None,
    ) -> Prediction:
        """Where does *prefix* land under *config* (default: current)?

        Walks the cached RIB snapshot from every alive system planned
        inside the prefix — the prober's deterministic return-path
        core, minus liveness/loss randomness — and classifies the
        reached interface kinds."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        label = config or self.current_config
        snapshot = self._snapshots.get(label)
        if snapshot is None:
            self.advance_to_config(label)
            snapshot = self._snapshots[label]
        plan = self.ecosystem.prefix_plans.get(prefix)
        if plan is None:
            raise ExperimentError("prefix %s is not in the study" % prefix)
        origin_set = set(self.host.origin_asns())
        deliveries: List[Tuple[int, Optional[int]]] = []
        kinds: List[str] = []
        for system in plan.alive_systems:
            path = snapshot.walk(system.attached_asn, origin_set)
            origin = (
                path.origin_asn
                if path.outcome is ForwardingOutcome.DELIVERED
                else None
            )
            deliveries.append((system.address, origin))
            if origin is not None:
                kinds.append(self.host.interface_for_origin(origin).kind)
        return Prediction(
            prefix=str(prefix),
            config=label,
            signal=signal_from_kinds(kinds),
            deliveries=tuple(deliveries),
        )

    def predict_batch(
        self,
        prefixes,
        config: Optional[str] = None,
    ) -> List[Prediction]:
        """Batched :meth:`predict` over many prefixes (one snapshot
        lookup, many walks)."""
        return [self.predict(prefix, config) for prefix in prefixes]

    def rib_state(self) -> tuple:
        """Canonical warm RIB state for the measurement prefix — the
        value the differential oracle compares byte-for-byte."""
        return self._engine.rib_state(self.ecosystem.measurement_prefix)

    # ----- the differential oracle ------------------------------------

    def replay_cold(self) -> "WhatIfSession":
        """Rebuild this session's state from scratch: fresh ecosystem,
        fresh engine, full journal replayed in order.  The warm state
        must be byte-identical to the twin's — this is the oracle the
        delta-convergence tests compare against."""
        twin = WhatIfSession(self.spec)
        for kind, payload in list(self._journal):
            if kind == "config":
                twin.advance_to_config(payload)
            else:
                twin.apply(payload)
        return twin

    # ----- internals --------------------------------------------------

    def _snapshot_current(self) -> None:
        prefix = self.ecosystem.measurement_prefix
        self._snapshots[self.current_config] = RibSnapshot.capture(
            self.ecosystem.topology,
            engine_rib(self._engine, prefix),
            prefix,
        )


def _default_schedule():
    from .experiment.schedule import ExperimentSchedule

    return ExperimentSchedule()


# ---------------------------------------------------------------------
# CLI delta specs


def parse_delta(text: str, session: WhatIfSession):
    """Parse one ``repro whatif --delta`` spec into a delta object.

    Formats (sides are ``re``/``commodity``, resolved against the
    session's experiment):

    - ``prepend:<side>=<n>``         — PrependChange
    - ``announce:<side>[=<n>]``      — AnnounceDelta
    - ``withdraw:<side>``            — WithdrawDelta
    - ``localpref:<asn>:<nbr>=<v>``  — LocalprefEdit
    - ``flap:<a>-<b>`` / ``down:<a>-<b>`` / ``up:<a>-<b>`` — LinkFlap
    """
    prefix = session.ecosystem.measurement_prefix
    try:
        kind, _, rest = text.partition(":")
        if kind in ("flap", "down", "up"):
            a_text, _, b_text = rest.partition("-")
            return LinkFlap(int(a_text), int(b_text), action=(
                "flap" if kind == "flap" else kind
            ))
        if kind == "localpref":
            asn_text, _, tail = rest.partition(":")
            neighbor_text, _, value_text = tail.partition("=")
            return LocalprefEdit(
                int(asn_text), int(neighbor_text), int(value_text)
            )
        side, _, amount = rest.partition("=")
        origin = _origin_for_side(session, side)
        if kind == "prepend":
            return PrependChange(origin, prefix, int(amount))
        if kind == "withdraw":
            return WithdrawDelta(origin, prefix)
        if kind == "announce":
            return AnnounceDelta(
                origin, prefix,
                default_prepends=int(amount) if amount else 0,
                tag=side,
            )
    except (ValueError, ExperimentError) as error:
        raise ExperimentError(
            "bad delta spec %r: %s" % (text, error)
        ) from None
    raise ExperimentError(
        "unknown delta kind %r (want prepend/announce/withdraw/"
        "localpref/flap/down/up)" % (kind,)
    )


def _origin_for_side(session: WhatIfSession, side: str) -> int:
    if side == "re":
        return session.re_origin
    if side == "commodity":
        return session.commodity_origin
    raise ExperimentError("side must be 're' or 'commodity', not %r" % side)
