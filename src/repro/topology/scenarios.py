"""Hand-built topologies reproducing the paper's illustrative figures.

- :func:`build_columbia_scenario` — Figure 1: Columbia receives UCSD
  prefixes via NYSERNet (R&E) and Cogent (commodity) with equal AS path
  lengths; only a localpref differential makes R&E deterministic.
- :func:`build_niks_scenario` — Figure 4: NIKS assigns localpref 102 to
  GEANT and 50 to both NORDUnet and Arelion, so the SURF-announced route
  always wins via GEANT while the Internet2-announced route competes
  with commodity on AS path length.
- :func:`build_ixp_scenario` — Figure 6: a measurement host multi-homed
  to an IXP route server and a Tier-1, used to infer whether IXP members
  assign equal localpref to peer and provider routes.

Well-known ASNs from the paper are used where applicable.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..netutil import Prefix
from .graph import ASClass, MemberSide, Topology

# ASNs from the paper.
AS_COLUMBIA = 14
AS_NYSERNET = 3754
AS_INTERNET2 = 11537
AS_INTERNET2_BLEND = 396955
AS_CENIC = 2152
AS_UCSD = 7377
AS_COGENT = 174
AS_LUMEN = 3356
AS_GEANT = 20965
AS_SURF = 1103
AS_SURF_ORIGIN = 1125
AS_NORDUNET = 2603
AS_NIKS = 3267
AS_ARELION = 1299
AS_RIPE = 3333
AS_DT = 3320

MEASUREMENT_PREFIX = Prefix.parse("163.253.63.0/24")


def build_columbia_scenario(columbia_prefers_re: bool = True) -> Topology:
    """Figure 1: UCSD prefixes reach Columbia via both NYSERNet (R&E) and
    Cogent (commodity) with equal AS path lengths.

    When *columbia_prefers_re* is True, Columbia assigns NYSERNet a
    higher localpref; otherwise both neighbors get the same localpref
    and the tie falls through to AS path length (then lower neighbor
    ASN, which favours Cogent's commodity path — the nondeterminism the
    paper warns about).
    """
    topo = Topology()
    topo.add_as(AS_COLUMBIA, "Columbia", ASClass.MEMBER, country="US",
                us_state="NY")
    topo.add_as(AS_NYSERNET, "NYSERNet", ASClass.RE_REGIONAL, country="US",
                us_state="NY")
    topo.add_as(AS_INTERNET2, "Internet2", ASClass.RE_BACKBONE, country="US")
    topo.add_as(AS_CENIC, "CENIC", ASClass.RE_REGIONAL, country="US",
                us_state="CA")
    topo.add_as(AS_UCSD, "UCSD", ASClass.MEMBER, country="US", us_state="CA")
    topo.add_as(AS_COGENT, "Cogent", ASClass.TIER1, country="US")
    topo.add_as(AS_LUMEN, "Lumen", ASClass.TIER1, country="US")

    # R&E side: UCSD -> CENIC -> Internet2 -> NYSERNet -> Columbia,
    # giving the figure's path 3754 11537 2152 7377.
    topo.add_provider(AS_UCSD, AS_CENIC)
    topo.add_provider(AS_CENIC, AS_INTERNET2)
    topo.add_provider(AS_NYSERNET, AS_INTERNET2)
    topo.add_provider(AS_COLUMBIA, AS_NYSERNET)
    # Commodity side: CENIC also provides commodity transit via Lumen,
    # so the commodity path is 174 3356 2152 7377 — the same length as
    # the R&E path, exactly as in Figure 1.
    topo.add_provider(AS_CENIC, AS_LUMEN)
    topo.add_peering(AS_LUMEN, AS_COGENT)
    topo.add_provider(AS_COLUMBIA, AS_COGENT)

    columbia = topo.node(AS_COLUMBIA)
    if columbia_prefers_re:
        columbia.policy.set_neighbor_localpref(AS_NYSERNET, 150)
        columbia.policy.set_neighbor_localpref(AS_COGENT, 100)
    else:
        columbia.policy.set_neighbor_localpref(AS_NYSERNET, 100)
        columbia.policy.set_neighbor_localpref(AS_COGENT, 100)

    topo.originate(AS_UCSD, Prefix.parse("132.239.0.0/16"),
                   side=MemberSide.PARTICIPANT)
    topo.validate()
    return topo


def build_niks_scenario() -> Tuple[Topology, Dict[str, int]]:
    """Figure 4: the NIKS localpref asymmetry.

    Returns the topology plus a dict of the key ASNs.  NIKS peers with
    GEANT (localpref 102), buys transit from NORDUnet and Arelion (both
    localpref 50).  SURF is GEANT's member, Internet2 is a fabric peer
    of both GEANT and NORDUnet.  A NIKS customer (an R&E member)
    originates one prefix.

    With Gao-Rexford export this reproduces the paper's observation:

    - SURF announcement (via GEANT's *customer* SURF) reaches NIKS from
      GEANT and always wins on localpref 102;
    - Internet2 announcement reaches NIKS only via NORDUnet (GEANT will
      not export a fabric-peer route to its non-fabric peer NIKS), ties
      with Arelion's commodity route on localpref 50, and is selected
      only when AS path length favours it.
    """
    topo = Topology()
    topo.add_as(AS_GEANT, "GEANT", ASClass.RE_BACKBONE, country="EU")
    topo.add_as(AS_SURF, "SURF", ASClass.NREN, country="NL")
    topo.add_as(AS_SURF_ORIGIN, "SURF-origin", ASClass.MEASUREMENT,
                country="NL")
    topo.add_as(AS_INTERNET2, "Internet2", ASClass.RE_BACKBONE, country="US")
    topo.add_as(AS_NORDUNET, "NORDUnet", ASClass.RE_BACKBONE, country="DK")
    topo.add_as(AS_NIKS, "NIKS", ASClass.NREN, country="RU")
    topo.add_as(AS_ARELION, "Arelion", ASClass.TIER1, country="SE")
    topo.add_as(AS_LUMEN, "Lumen", ASClass.TIER1, country="US")
    topo.add_as(AS_INTERNET2_BLEND, "Meas-commodity", ASClass.MEASUREMENT,
                country="US")
    niks_member = 64512
    topo.add_as(niks_member, "NIKS-member", ASClass.MEMBER, country="RU")

    # R&E fabric.
    topo.add_peering(AS_GEANT, AS_INTERNET2, fabric=True)
    topo.add_peering(AS_GEANT, AS_NORDUNET, fabric=True)
    topo.add_peering(AS_INTERNET2, AS_NORDUNET, fabric=True)
    # SURF is GEANT's member (customer); the SURF-side measurement origin
    # is SURF's customer.
    topo.add_provider(AS_SURF, AS_GEANT)
    topo.add_provider(AS_SURF_ORIGIN, AS_SURF)
    # NIKS: peer of GEANT, customer of NORDUnet and Arelion.
    topo.add_peering(AS_NIKS, AS_GEANT)
    topo.add_provider(AS_NIKS, AS_NORDUNET)
    topo.add_provider(AS_NIKS, AS_ARELION)
    # Commodity fabric: Arelion -(peer)- Lumen; commodity measurement
    # origin is Lumen's customer.
    topo.add_peering(AS_ARELION, AS_LUMEN)
    topo.add_provider(AS_INTERNET2_BLEND, AS_LUMEN)
    # The member behind NIKS.
    topo.add_provider(niks_member, AS_NIKS)

    niks = topo.node(AS_NIKS)
    niks.policy.set_neighbor_localpref(AS_GEANT, 102)
    niks.policy.set_neighbor_localpref(AS_NORDUNET, 50)
    niks.policy.set_neighbor_localpref(AS_ARELION, 50)

    topo.originate(niks_member, Prefix.parse("198.51.100.0/24"),
                   side=MemberSide.PEER_NREN)
    topo.validate()
    asns = {
        "geant": AS_GEANT,
        "surf": AS_SURF,
        "surf_origin": AS_SURF_ORIGIN,
        "internet2": AS_INTERNET2,
        "nordunet": AS_NORDUNET,
        "niks": AS_NIKS,
        "arelion": AS_ARELION,
        "lumen": AS_LUMEN,
        "commodity_origin": AS_INTERNET2_BLEND,
        "member": niks_member,
    }
    return topo, asns


def build_ixp_scenario(
    alpha_equal_localpref: bool = True,
) -> Tuple[Topology, Dict[str, int]]:
    """Figure 6: inferring peer-vs-provider preference at an IXP.

    The measurement host (AS 64500) announces 192.0.2.0/24 both across
    an IXP fabric (bilateral peering with members) and via a Tier-1
    provider (Arelion).  *Alpha* peers with the host at the IXP and buys
    transit from the Tier-1; whether Alpha's return traffic uses the
    peer or provider route under prepend changes reveals its relative
    localpref.  *Beta* also peers with the Tier-1, the ambiguous case
    discussed in §5.
    """
    topo = Topology()
    host = 64500
    alpha = 64501
    beta = 64502
    topo.add_as(host, "Meas-host", ASClass.MEASUREMENT)
    topo.add_as(AS_ARELION, "Tier-1", ASClass.TIER1)
    topo.add_as(alpha, "Alpha", ASClass.MEMBER)
    topo.add_as(beta, "Beta", ASClass.MEMBER)

    topo.add_provider(host, AS_ARELION)
    topo.add_peering(host, alpha)    # bilateral peering across the IXP
    topo.add_peering(host, beta)
    topo.add_provider(alpha, AS_ARELION)
    topo.add_peering(beta, AS_ARELION)

    node = topo.node(alpha)
    if alpha_equal_localpref:
        node.policy.set_neighbor_localpref(host, 100)
        node.policy.set_neighbor_localpref(AS_ARELION, 100)
    else:
        node.policy.set_neighbor_localpref(host, 200)
        node.policy.set_neighbor_localpref(AS_ARELION, 100)

    topo.validate()
    return topo, {
        "host": host,
        "tier1": AS_ARELION,
        "alpha": alpha,
        "beta": beta,
    }
