"""Configuration and ground-truth records for the R&E ecosystem generator.

The generator assigns every member AS a *policy* (how it ranks R&E vs
commodity routes, how it prepends) and every prefix a *plan* (which
systems respond, where they attach).  These records are the ground
truth that validation analyses compare inferences against — the
simulated counterpart of the paper's operator interviews.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ReproError
from ..netutil import Prefix
from .graph import MemberSide


class EgressClass(Enum):
    """A member's relative preference between R&E and commodity routes."""

    RE_PREFER = "re-prefer"              # higher localpref on R&E
    EQUAL = "equal"                      # same localpref; path length decides
    COMMODITY_PREFER = "commodity-prefer"

    def __str__(self) -> str:
        return self.value


class PrependClass(Enum):
    """Relative origin-AS prepending toward R&E vs commodity (Table 4)."""

    EQUAL = "R=C"
    MORE_COMMODITY = "R<C"   # prepended more toward commodity
    MORE_RE = "R>C"          # prepended more toward R&E
    NO_COMMODITY = "no-commodity"

    def __str__(self) -> str:
        return self.value


class PrefixKind(Enum):
    """How a prefix's responsive systems attach to the routing system."""

    NORMAL = "normal"              # all systems behind the origin AS
    MIXED = "mixed"                # one system behind a different AS (§4)
    INTERCONNECT = "interconnect"  # all systems on an interconnect router
    COVERED = "covered"            # excluded before seeding (§3.2)


@dataclass
class MemberTruth:
    """Ground truth for one member AS."""

    asn: int
    egress_class: EgressClass
    prepend_class: PrependClass
    side: MemberSide
    country: Optional[str] = None
    us_state: Optional[str] = None
    visible_commodity: bool = False   # announces prefixes to commodity
    hidden_commodity: bool = False    # commodity egress, not announced
    age_tiebreak_only: bool = False   # ignores AS path length (§A case J)
    re_neighbors: List[int] = field(default_factory=list)
    commodity_neighbors: List[int] = field(default_factory=list)
    behind_transit: Optional[int] = None  # set for asymmetric-transit cones

    @property
    def has_commodity_egress(self) -> bool:
        return self.visible_commodity or self.hidden_commodity


@dataclass
class SystemPlan:
    """One probeable system inside a prefix."""

    address: int
    prefix: Prefix
    attached_asn: int
    seed_source: str            # "isi" or "censys"
    alive: bool = True
    loss_probability: float = 0.004


@dataclass
class PrefixPlan:
    """Ground truth and probing plan for one prefix."""

    prefix: Prefix
    origin_asn: int
    side: MemberSide
    kind: PrefixKind = PrefixKind.NORMAL
    covered_by: Optional[Prefix] = None
    isi_covered: bool = False
    censys_covered: bool = False
    systems: List[SystemPlan] = field(default_factory=list)

    @property
    def alive_systems(self) -> List[SystemPlan]:
        return [s for s in self.systems if s.alive]


@dataclass
class OutageEvent:
    """A scheduled link failure during one experiment (§4's unexpected
    switches and oscillations)."""

    experiment: str        # "surf" or "internet2"
    down_after_round: int  # link fails after this round index completes
    up_after_round: Optional[int]  # restored after this round (None: stays down)
    a: int
    b: int
    victim_asn: int


@dataclass
class FeederPlan:
    """Collector feeder sessions (RouteViews/RIS analogue)."""

    commodity_sessions: Dict[int, int] = field(default_factory=dict)
    re_sessions: Dict[int, int] = field(default_factory=dict)
    member_feeders: List[int] = field(default_factory=list)
    vrf_split_feeders: List[int] = field(default_factory=list)
    tie_feeder: Optional[int] = None  # the AS with no most-frequent inference

    def all_sessions(self) -> Dict[int, int]:
        sessions = dict(self.commodity_sessions)
        for asn, count in self.re_sessions.items():
            sessions[asn] = sessions.get(asn, 0) + count
        return sessions


@dataclass
class REEcosystemConfig:
    """Knobs for the synthetic R&E ecosystem.

    Default mixture weights are calibrated from the paper's published
    joint distributions (Tables 1 and 4) so the headline proportions
    emerge from per-AS policy draws.  ``scale`` multiplies the member
    population (1.0 approximates the paper: 2,653 ASes, ~18K prefixes).
    """

    scale: float = 0.15

    # --- population ----------------------------------------------------
    n_members_full: int = 2653
    mean_prefixes_per_member: float = 6.8
    max_prefixes_per_member: int = 60
    us_member_share: float = 0.50
    covered_prefix_rate: float = 0.024          # 437 / 18,427
    n_tier1: int = 8
    n_transit_full: int = 48
    deep_transit_share: float = 0.40            # transits homed to transits
    deep2_transit_share: float = 0.15           # two levels below tier-1
    intl_deep_commodity_bias: float = 0.60      # extra chain depth abroad

    # --- egress policy mixture ------------------------------------------
    # Visible-commodity members: P(prepend class) then P(egress | prepend),
    # both read off Table 4 (mixed handled per-prefix).
    # The conditionals are Table 4's rows with the prefix-level mixed and
    # interconnect events factored out (those are drawn separately per
    # prefix and land in "mixed" / "always commodity" on their own).
    prepend_class_weights: Tuple[float, float, float] = (0.534, 0.414, 0.053)
    egress_given_equal: Tuple[float, float, float] = (0.807, 0.048, 0.145)
    egress_given_more_commodity: Tuple[float, float, float] = (0.882, 0.040, 0.078)
    egress_given_more_re: Tuple[float, float, float] = (0.550, 0.365, 0.085)
    # No-commodity members (Table 4 right column, mixed excluded).
    no_commodity_rate: float = 0.368
    egress_no_commodity: Tuple[float, float, float] = (0.925, 0.026, 0.049)
    hidden_commodity_extra: float = 0.05  # hidden egress for RE-preferring
    age_tiebreak_rate: float = 0.0015     # §B: 4 of 2,653 ASes

    # --- prefix-level events ---------------------------------------------
    mixed_prefix_rate: float = 0.038
    interconnect_prefix_rate: float = 0.017
    prepend_more_commodity_counts: Tuple[int, ...] = (1, 2, 3)
    prepend_more_commodity_weights: Tuple[float, ...] = (0.5, 0.35, 0.15)
    prepend_more_re_counts: Tuple[int, ...] = (1, 2)
    prepend_more_re_weights: Tuple[float, ...] = (0.7, 0.3)

    # --- seeding / responsiveness (§3.2 funnel) ---------------------------
    isi_coverage: float = 0.652
    censys_coverage: float = 0.232          # union with ISI -> 0.733
    alive_given_covered: float = 0.928      # 68.0% responsive overall
    three_systems_rate: float = 0.827
    base_loss_probability: float = 0.006
    flaky_system_rate: float = 0.04
    flaky_loss_probability: float = 0.08

    # --- asymmetric R&E transits (Table 2 off-diagonal) -------------------
    # (surf_side_kind, surf_lp, i2_side_kind, i2_lp, members, prefixes)
    # at full scale; kinds: "geant-peer", "geant-provider", "i2-peer",
    # "nordunet-provider".
    niks_members_full: int = 40
    niks_prefixes_full: int = 237
    asym_cells_full: Tuple[Tuple[str, int, str, int, int, int], ...] = (
        ("geant-peer", 102, "nordunet-provider", 50, 8, 34),   # [RE, switch]
        ("i2-peer", 102, "geant-provider", 50, 18, 90),        # [switch, RE]
        ("i2-peer", 102, "geant-provider", 40, 8, 40),         # [comm, RE]
        ("geant-peer", 102, "nordunet-provider", 40, 6, 28),   # [RE, comm]
        ("i2-peer", 50, "geant-provider", 40, 11, 54),         # [comm, switch]
        ("geant-peer", 50, "nordunet-provider", 40, 10, 51),   # [switch, comm]
    )

    # --- collectors --------------------------------------------------------
    n_commodity_feeders_full: int = 40
    commodity_feeder_sessions: Tuple[int, int] = (5, 45)
    n_re_feeders: int = 5
    re_feeder_sessions: Tuple[int, int] = (2, 8)
    n_member_feeders: int = 26
    n_vrf_split_feeders: int = 3
    background_flap_rate_per_hour: float = 9.0  # §3.3's residual churn

    # --- outages ------------------------------------------------------------
    surf_switch_to_commodity: int = 1
    surf_oscillating: int = 5
    internet2_switch_to_commodity: int = 3
    internet2_oscillating: int = 2

    def n_members(self) -> int:
        return max(12, round(self.n_members_full * self.scale))

    def n_transits(self) -> int:
        return max(6, round(self.n_transit_full * self.infra_scale()))

    def n_commodity_feeders(self) -> int:
        return max(4, round(self.n_commodity_feeders_full * self.infra_scale()))

    def infra_scale(self) -> float:
        return max(0.2, min(1.0, self.scale ** 0.5))

    def scaled(self, count_full: int, minimum: int = 1) -> int:
        return max(minimum, round(count_full * self.scale))


#: Named ecosystem variants for campaign sweeps (``repro sweep
#: --scenarios``).  Each maps scenario name -> :class:`REEcosystemConfig`
#: field overrides; ``"baseline"`` is the unmodified config.  The
#: variants probe the robustness dimensions the paper's single-topology
#: runs cannot: policy-mixture shifts (does the ~81% always-R&E
#: fraction survive a commodity-leaning egress mixture?), seeding
#: sparsity (§3.2 funnel pressure), probe flakiness (loss-exclusion
#: pressure on Table 1), and transit-graph depth (longer AS paths
#: around the prepend break-even).
SCENARIO_PRESETS: Dict[str, Dict[str, object]] = {
    "baseline": {},
    "commodity-heavy": {
        # Shift the egress mixture toward commodity preference.
        "egress_given_equal": (0.65, 0.08, 0.27),
        "egress_given_more_commodity": (0.70, 0.08, 0.22),
        "no_commodity_rate": 0.25,
    },
    "re-dominant": {
        # More R&E-only members, fewer hidden commodity egresses.
        "no_commodity_rate": 0.55,
        "hidden_commodity_extra": 0.02,
        "egress_given_equal": (0.88, 0.03, 0.09),
    },
    "sparse-seeding": {
        # Weaker ISI/Censys coverage: fewer probeable systems.
        "isi_coverage": 0.45,
        "censys_coverage": 0.15,
        "alive_given_covered": 0.85,
        "three_systems_rate": 0.60,
    },
    "flaky-probes": {
        # Lossier data plane: more prefixes excluded for packet loss.
        "base_loss_probability": 0.02,
        "flaky_system_rate": 0.12,
        "flaky_loss_probability": 0.15,
    },
    "deep-transit": {
        # Deeper commodity transit chains: longer commodity AS paths.
        "deep_transit_share": 0.60,
        "deep2_transit_share": 0.30,
        "intl_deep_commodity_bias": 0.80,
    },
}

#: Config fields a spec/scenario may override.  Everything on
#: :class:`REEcosystemConfig` is fair game; the set exists to fail
#: loudly on typos instead of silently ignoring an override.
_CONFIG_FIELDS = None


def config_field_names() -> frozenset:
    """The overridable :class:`REEcosystemConfig` field names."""
    global _CONFIG_FIELDS
    if _CONFIG_FIELDS is None:
        _CONFIG_FIELDS = frozenset(
            f.name for f in dataclasses.fields(REEcosystemConfig)
        )
    return _CONFIG_FIELDS


def _freeze_value(value):
    """JSON round-trips turn tuples into lists; config fields are
    declared as tuples, so normalise sequences back."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    return value


def apply_config_overrides(
    config: REEcosystemConfig, overrides: Mapping[str, object]
) -> REEcosystemConfig:
    """Return *config* with *overrides* applied (pure; validates field
    names so a misspelt override fails instead of silently noop-ing)."""
    if not overrides:
        return config
    names = config_field_names()
    unknown = sorted(set(overrides) - names)
    if unknown:
        raise ReproError(
            "unknown REEcosystemConfig override(s): %s (known fields: "
            "see repro.topology.re_config.REEcosystemConfig)"
            % ", ".join(unknown)
        )
    return dataclasses.replace(
        config,
        **{name: _freeze_value(value) for name, value in overrides.items()},
    )


def scenario_overrides(name: str) -> Dict[str, object]:
    """The override dict for scenario *name* (raises on unknown)."""
    try:
        return dict(SCENARIO_PRESETS[name])
    except KeyError:
        raise ReproError(
            "unknown scenario %r (known: %s)"
            % (name, ", ".join(sorted(SCENARIO_PRESETS)))
        ) from None
