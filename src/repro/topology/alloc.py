"""Sequential prefix allocation for generated topologies.

The allocator hands out non-overlapping prefixes from a pool of /8
blocks, and can deliberately carve a *covered* subprefix out of an
already-allocated prefix (the paper excludes 437 such prefixes, §3.2).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import AddressError
from ..netutil import Prefix

#: Default allocation pool: blocks that read as plausible unicast space.
DEFAULT_POOL = (
    Prefix.parse("128.0.0.0/8"),
    Prefix.parse("129.0.0.0/8"),
    Prefix.parse("130.0.0.0/8"),
    Prefix.parse("131.0.0.0/8"),
    Prefix.parse("132.0.0.0/8"),
    Prefix.parse("134.0.0.0/8"),
    Prefix.parse("136.0.0.0/8"),
    Prefix.parse("137.0.0.0/8"),
    Prefix.parse("138.0.0.0/8"),
    Prefix.parse("139.0.0.0/8"),
    Prefix.parse("140.0.0.0/8"),
    Prefix.parse("141.0.0.0/8"),
    Prefix.parse("142.0.0.0/8"),
    Prefix.parse("143.0.0.0/8"),
    Prefix.parse("144.0.0.0/8"),
    Prefix.parse("145.0.0.0/8"),
)


class PrefixAllocator:
    """Allocates non-overlapping prefixes sequentially from a pool.

    Allocation is at /16 granularity internally: each call to
    :meth:`allocate` consumes the next free /16-aligned slice large
    enough for the requested length (lengths 16..24 supported).
    """

    MIN_LENGTH = 16
    MAX_LENGTH = 24

    def __init__(self, pool=DEFAULT_POOL) -> None:
        self._pool: List[Prefix] = list(pool)
        if not self._pool:
            raise AddressError("empty allocation pool")
        self._block_index = 0
        self._cursor = self._pool[0].network
        self.allocated: List[Prefix] = []

    def allocate(self, length: int = 24) -> Prefix:
        """Allocate the next free, naturally aligned prefix of the
        given length.

        The cursor only moves forward, so allocations never overlap and
        covered prefixes are only made deliberately via
        :meth:`carve_covered`.
        """
        if not self.MIN_LENGTH <= length <= self.MAX_LENGTH:
            raise AddressError(
                "allocator supports /%d../%d, got /%d"
                % (self.MIN_LENGTH, self.MAX_LENGTH, length)
            )
        size = 1 << (32 - length)
        # Align the cursor up to the prefix's natural boundary.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        block = self._pool[self._block_index]
        if aligned + size - 1 > block.last_address:
            self._block_index += 1
            if self._block_index >= len(self._pool):
                raise AddressError("prefix allocation pool exhausted")
            block = self._pool[self._block_index]
            aligned = block.network
        prefix = Prefix(aligned, length)
        self._cursor = aligned + size
        self.allocated.append(prefix)
        return prefix

    def carve_covered(self, parent: Prefix, length: Optional[int] = None) -> Prefix:
        """Return a subprefix strictly inside *parent* (used to generate
        the covered prefixes that §3.2 excludes)."""
        if length is None:
            length = min(parent.length + 2, 26)
        if length <= parent.length:
            raise AddressError(
                "covered prefix must be more specific than %s" % parent
            )
        # Take the second subprefix so it is visibly distinct from the
        # parent's network address.
        sub = list(parent.subprefixes(length))[1]
        self.allocated.append(sub)
        return sub
