"""Synthetic R&E ecosystem generator.

Builds the AS topology, policies, prefixes, probing plans, collector
feeders, and outage schedule that the SURF and Internet2 experiments
run against.  Every stochastic draw flows from the caller's seed; the
mixture weights live in :class:`~repro.topology.re_config.REEcosystemConfig`
and are calibrated so the paper's published distributions emerge from
policy draws rather than being copied into results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TopologyError
from ..geo import GeoDatabase
from ..geo.regions import (
    EUROPE_PROFILES,
    NON_EUROPE_PROFILES,
    US_STATE_PROFILES,
)
from ..netutil import Prefix
from ..rng import SeedTree, sample_heavy_tailed_count, weighted_choice
from . import asns
from .alloc import PrefixAllocator
from .graph import ASClass, MemberSide, Topology
from .re_config import (
    EgressClass,
    FeederPlan,
    MemberTruth,
    OutageEvent,
    PrefixKind,
    PrefixPlan,
    PrependClass,
    REEcosystemConfig,
    SystemPlan,
)

MEASUREMENT_PREFIX = Prefix.parse("163.253.63.0/24")

#: Localpref values used by member policies.
LP_RE_HIGH = 150
LP_BASE = 100

_BACKBONES = (
    (asns.AS_INTERNET2, "Internet2"),
    (asns.AS_GEANT, "GEANT"),
    (asns.AS_NORDUNET, "NORDUnet"),
    (asns.AS_CANARIE, "CANARIE"),
    (asns.AS_AARNET, "AARNet"),
    (asns.AS_ESNET, "ESnet"),
)

#: Which backbone each country's NREN attaches to.
_HOME_BACKBONE = {
    "AU": asns.AS_AARNET,
    "NZ": asns.AS_AARNET,
    "JP": asns.AS_AARNET,
    "KR": asns.AS_AARNET,
    "TH": asns.AS_AARNET,
    "CA": asns.AS_CANARIE,
    "BR": asns.AS_INTERNET2,
}

_TIER1_NAMES = ("Lumen", "Cogent", "Arelion", "DTAG", "GTT", "Zayo",
                "Liberty", "PCCW", "Telxius", "Orange")
_TIER1_ASNS = (asns.AS_LUMEN, asns.AS_COGENT, asns.AS_ARELION, asns.AS_DT)


@dataclass
class Ecosystem:
    """Everything the experiments and analyses need, with ground truth."""

    config: REEcosystemConfig
    topology: Topology
    measurement_prefix: Prefix
    commodity_origin: int
    surf_origin: int
    internet2_origin: int
    surf_asn: int
    geant_asn: int
    lumen_asn: int
    nordunet_asn: int
    ripe_asn: int
    niks_asn: int
    asym_transits: List[int] = field(default_factory=list)
    members: Dict[int, MemberTruth] = field(default_factory=dict)
    prefix_plans: Dict[Prefix, PrefixPlan] = field(default_factory=dict)
    feeders: FeederPlan = field(default_factory=FeederPlan)
    outages: List[OutageEvent] = field(default_factory=list)
    geo: Optional[GeoDatabase] = None

    def re_origin_for(self, experiment: str) -> int:
        """The R&E announcement origin for an experiment name."""
        if experiment == "surf":
            return self.surf_origin
        if experiment == "internet2":
            return self.internet2_origin
        raise TopologyError("unknown experiment %r" % (experiment,))

    def studied_prefixes(self) -> List[PrefixPlan]:
        """The probing target set: member prefixes after covered-prefix
        exclusion (the paper's 17,989)."""
        return [
            plan
            for plan in self.prefix_plans.values()
            if plan.kind is not PrefixKind.COVERED
        ]

    def covered_prefixes(self) -> List[PrefixPlan]:
        return [
            plan
            for plan in self.prefix_plans.values()
            if plan.kind is PrefixKind.COVERED
        ]

    def seeded_prefixes(self) -> List[PrefixPlan]:
        """Prefixes with at least one planned responsive system."""
        return [
            plan for plan in self.studied_prefixes() if plan.alive_systems
        ]


def build_ecosystem(
    config: Optional[REEcosystemConfig] = None, seed: int = 0
) -> Ecosystem:
    """Build the full synthetic ecosystem."""
    return _Builder(config or REEcosystemConfig(), seed).build()


class _Builder:
    def __init__(self, config: REEcosystemConfig, seed: int) -> None:
        self.config = config
        self.tree = SeedTree(seed).child("ecosystem")
        self.topo = Topology()
        self.alloc = PrefixAllocator()
        self.tier1s: List[int] = []
        self.shallow_transits: List[int] = []
        self.deep_transits: List[int] = []
        self.deep2_transits: List[int] = []
        self.nren_by_country: Dict[str, int] = {}
        self.regional_by_state: Dict[str, int] = {}
        self.members: Dict[int, MemberTruth] = {}
        self.prefix_plans: Dict[Prefix, PrefixPlan] = {}
        self.asym_transits: List[int] = []
        self._member_asn = itertools.count(asns.MEMBER_BASE)

    # ------------------------------------------------------------------

    def build(self) -> Ecosystem:
        self._build_commodity_core()
        self._build_re_core()
        self._build_nrens_and_regionals()
        self._build_members()
        self._build_asym_transits()
        self._build_measurement_and_ripe()
        self._plan_systems()
        ecosystem = Ecosystem(
            config=self.config,
            topology=self.topo,
            measurement_prefix=MEASUREMENT_PREFIX,
            commodity_origin=asns.AS_INTERNET2_BLEND,
            surf_origin=asns.AS_SURF_ORIGIN,
            internet2_origin=asns.AS_INTERNET2,
            surf_asn=asns.AS_SURF,
            geant_asn=asns.AS_GEANT,
            lumen_asn=asns.AS_LUMEN,
            nordunet_asn=asns.AS_NORDUNET,
            ripe_asn=asns.AS_RIPE,
            niks_asn=asns.AS_NIKS,
            asym_transits=list(self.asym_transits),
            members=self.members,
            prefix_plans=self.prefix_plans,
        )
        ecosystem.feeders = self._select_feeders(ecosystem)
        ecosystem.outages = self._plan_outages(ecosystem)
        ecosystem.geo = GeoDatabase.from_topology(self.topo)
        self.topo.validate()
        return ecosystem

    # ----- commodity core ------------------------------------------------

    def _build_commodity_core(self) -> None:
        rng = self.tree.child("commodity-core").rng()
        for index in range(self.config.n_tier1):
            if index < len(_TIER1_ASNS):
                asn = _TIER1_ASNS[index]
            else:
                asn = asns.TIER1_BASE + index
            name = _TIER1_NAMES[index % len(_TIER1_NAMES)]
            self.topo.add_as(asn, name, ASClass.TIER1)
            self.tier1s.append(asn)
        for a, b in itertools.combinations(self.tier1s, 2):
            self.topo.add_peering(a, b)

        n_transit = self.config.n_transits()
        n_deep = round(n_transit * self.config.deep_transit_share)
        n_deep2 = round(n_transit * self.config.deep2_transit_share)
        n_shallow = max(2, n_transit - n_deep - n_deep2)
        for index in range(n_transit):
            asn = asns.TRANSIT_BASE + index
            self.topo.add_as(asn, "transit-%d" % index, ASClass.TRANSIT)
            if index < n_shallow:
                # Shallow transit: customer of one or two tier-1s.
                self.shallow_transits.append(asn)
                for tier1 in rng.sample(self.tier1s, rng.choice((1, 2))):
                    self.topo.add_provider(asn, tier1)
            elif index < n_shallow + n_deep:
                # Deep transit: customer of shallow transits (longer
                # commodity chains, used to diversify AS path lengths).
                self.deep_transits.append(asn)
                uplinks = rng.sample(
                    self.shallow_transits,
                    min(rng.choice((1, 2)), len(self.shallow_transits)),
                )
                for uplink in uplinks:
                    self.topo.add_provider(asn, uplink)
            else:
                # Second-level deep transit: the long international
                # commodity chains behind §B's Peer-NREN observations.
                self.deep2_transits.append(asn)
                uplinks = rng.sample(
                    self.deep_transits or self.shallow_transits,
                    1,
                )
                for uplink in uplinks:
                    self.topo.add_provider(asn, uplink)
        # A little shallow-transit peering mesh for path diversity.
        for a, b in itertools.combinations(self.shallow_transits, 2):
            if rng.random() < 0.08 and not self.topo.has_link(a, b):
                self.topo.add_peering(a, b)

    # ----- R&E core ----------------------------------------------------------

    def _build_re_core(self) -> None:
        for asn, name in _BACKBONES:
            self.topo.add_as(asn, name, ASClass.RE_BACKBONE,
                             country="US" if name in ("Internet2", "ESnet")
                             else None)
        for (a, _), (b, __) in itertools.combinations(_BACKBONES, 2):
            self.topo.add_peering(a, b, fabric=True)

    # ----- NRENs and U.S. regionals --------------------------------------------

    def _build_nrens_and_regionals(self) -> None:
        rng = self.tree.child("re-edges").rng()
        nren_index = 0
        for profile in EUROPE_PROFILES + NON_EUROPE_PROFILES:
            if profile.code == "NL":
                asn = asns.AS_SURF
                name = "SURF"
            else:
                asn = asns.NREN_BASE + nren_index
                name = "NREN-%s" % profile.code
            nren_index += 1
            node = self.topo.add_as(asn, name, ASClass.NREN,
                                    country=profile.code)
            backbone = _HOME_BACKBONE.get(profile.code, asns.AS_GEANT)
            self.topo.add_provider(asn, backbone)
            node.policy.set_neighbor_localpref(backbone, LP_RE_HIGH)
            if profile.nren_shares_ripe_provider:
                commodity = asns.AS_DT
            else:
                commodity = rng.choice(self.tier1s)
            self.topo.add_provider(asn, commodity)
            node.policy.set_neighbor_localpref(commodity, LP_BASE)
            if profile.nren_prepends_commodity:
                node.policy.set_export_prepends(commodity, 2)
            if not (profile.nren_offers_commodity
                    or profile.nren_shares_ripe_provider):
                # An NREN that does not sell commodity transit keeps its
                # commodity uplink for its own egress but does not
                # announce member prefixes to it (the DFN-via-DT case is
                # the exception §4.3 highlights).
                node.policy.no_export_to.add(commodity)
            if asn == asns.AS_SURF:
                # §3.1: the R&E measurement announcement must never reach
                # commodity providers; SURF filters it toward its
                # commodity transit (it reaches SURF from customer 1125,
                # so Gao-Rexford alone would leak it).
                node.policy.no_export_tags[commodity] = {"re"}
            self.nren_by_country[profile.code] = asn

        for index, profile in enumerate(US_STATE_PROFILES):
            if profile.code == "NY":
                asn = asns.AS_NYSERNET
            elif profile.code == "CA":
                asn = asns.AS_CENIC
            else:
                asn = asns.REGIONAL_BASE + index
            node = self.topo.add_as(asn, profile.regional_name,
                                    ASClass.RE_REGIONAL, country="US",
                                    us_state=profile.code)
            self.topo.add_provider(asn, asns.AS_INTERNET2)
            node.policy.set_neighbor_localpref(asns.AS_INTERNET2, LP_RE_HIGH)
            if profile.regional_offers_commodity:
                commodity = rng.choice(self.tier1s)
                self.topo.add_provider(asn, commodity)
                node.policy.set_neighbor_localpref(commodity, LP_BASE)
                if profile.regional_prepends_commodity:
                    node.policy.set_export_prepends(commodity, 2)
            self.regional_by_state[profile.code] = asn

    # ----- members -----------------------------------------------------------

    def _region_allocation(self) -> List[Tuple[str, object]]:
        """Per-member region assignments: ('state', profile) or
        ('country', profile) entries, one per member to create."""
        total = self.config.n_members()
        n_us = round(total * self.config.us_member_share)
        out: List[Tuple[str, object]] = []

        def spread(profiles: Sequence, count: int, kind: str) -> None:
            weights = [p.member_weight for p in profiles]
            weight_sum = sum(weights)
            remainders = []
            allocated = 0
            for profile, weight in zip(profiles, weights):
                exact = count * weight / weight_sum
                take = int(exact)
                remainders.append((exact - take, profile))
                allocated += take
                out.extend((kind, profile) for _ in range(take))
            remainders.sort(key=lambda item: -item[0])
            for _, profile in remainders[: count - allocated]:
                out.append((kind, profile))

        spread(US_STATE_PROFILES, n_us, "state")
        spread(EUROPE_PROFILES + NON_EUROPE_PROFILES, total - n_us, "country")
        return out

    def _build_members(self) -> None:
        rng = self.tree.child("members").rng()
        config = self.config
        for kind, profile in self._region_allocation():
            asn = next(self._member_asn)
            if kind == "state":
                side = MemberSide.PARTICIPANT
                re_provider = self.regional_by_state[profile.code]
                country, us_state = "US", profile.code
                offers_commodity = profile.regional_offers_commodity
            else:
                side = MemberSide.PEER_NREN
                re_provider = self.nren_by_country[profile.code]
                country, us_state = profile.code, None
                offers_commodity = profile.nren_offers_commodity
            node = self.topo.add_as(asn, "member-%d" % asn, ASClass.MEMBER,
                                    country=country, us_state=us_state)
            self.topo.add_provider(asn, re_provider)

            truth = self._draw_member_policy(
                rng, asn, side, profile, offers_commodity
            )
            truth.re_neighbors = [re_provider]
            self.members[asn] = truth

            commodity = self._attach_commodity(rng, truth, side)
            self._apply_member_policy(node, truth, re_provider, commodity)
            self._originate_member_prefixes(rng, truth)

    def _draw_member_policy(
        self, rng, asn: int, side: MemberSide, profile, offers_commodity: bool
    ) -> MemberTruth:
        """Draw visibility, prepend class and egress class for a member."""
        config = self.config
        if offers_commodity:
            p_no_commodity = 1.0 - profile.member_extra_commodity
        elif getattr(profile, "nren_shares_ripe_provider", False):
            p_no_commodity = 0.28
        else:
            p_no_commodity = config.no_commodity_rate

        egress_names = (
            EgressClass.RE_PREFER,
            EgressClass.COMMODITY_PREFER,
            EgressClass.EQUAL,
        )
        if rng.random() < p_no_commodity:
            egress = weighted_choice(
                rng, egress_names, config.egress_no_commodity
            )
            hidden = (
                egress is not EgressClass.RE_PREFER
                or rng.random() < config.hidden_commodity_extra
            )
            truth = MemberTruth(
                asn=asn,
                egress_class=egress,
                prepend_class=PrependClass.NO_COMMODITY,
                side=side,
                visible_commodity=False,
                hidden_commodity=hidden,
            )
        else:
            bias = profile.member_prepend_bias
            if rng.random() < bias:
                prepend = PrependClass.MORE_COMMODITY
            else:
                prepend = weighted_choice(
                    rng,
                    (PrependClass.EQUAL, PrependClass.MORE_RE),
                    (0.88, 0.12),
                )
            conditional = {
                PrependClass.EQUAL: config.egress_given_equal,
                PrependClass.MORE_COMMODITY:
                    config.egress_given_more_commodity,
                PrependClass.MORE_RE: config.egress_given_more_re,
            }[prepend]
            egress = weighted_choice(rng, egress_names, conditional)
            truth = MemberTruth(
                asn=asn,
                egress_class=egress,
                prepend_class=prepend,
                side=side,
                visible_commodity=True,
            )
        if (
            side is MemberSide.PEER_NREN
            and truth.has_commodity_egress is False
            and truth.egress_class is EgressClass.EQUAL
        ):
            pass  # equal-localpref without commodity never observes a tie
        if (
            side is MemberSide.PEER_NREN
            and rng.random() < config.age_tiebreak_rate
        ):
            truth.egress_class = EgressClass.EQUAL
            truth.age_tiebreak_only = True
            if not truth.has_commodity_egress:
                truth.hidden_commodity = True
        truth.country = (
            "US" if side is MemberSide.PARTICIPANT else profile.code
        )
        truth.us_state = (
            profile.code if side is MemberSide.PARTICIPANT else None
        )
        return truth

    def _attach_commodity(
        self, rng, truth: MemberTruth, side: MemberSide
    ) -> Optional[int]:
        """Pick and wire the member's commodity provider, if any."""
        if not (truth.visible_commodity or truth.hidden_commodity):
            return None
        config = self.config
        deep_bias = (
            config.intl_deep_commodity_bias
            if side is MemberSide.PEER_NREN
            else 0.15
        )
        roll = rng.random()
        if roll < 0.12 and side is MemberSide.PARTICIPANT:
            provider = rng.choice(self.tier1s)
        elif rng.random() < deep_bias:
            if (
                side is MemberSide.PEER_NREN
                and self.deep2_transits
                and rng.random() < 0.55
            ):
                provider = rng.choice(self.deep2_transits)
            elif self.deep_transits:
                provider = rng.choice(self.deep_transits)
            else:
                provider = rng.choice(self.shallow_transits or self.tier1s)
        else:
            provider = rng.choice(self.shallow_transits or self.tier1s)
        self.topo.add_provider(truth.asn, provider)
        truth.commodity_neighbors = [provider]
        return provider

    def _apply_member_policy(
        self, node, truth: MemberTruth, re_provider: int,
        commodity: Optional[int],
    ) -> None:
        """Translate the drawn classes into a concrete RoutingPolicy."""
        rng = self.tree.child("member-policy-%d" % truth.asn).rng()
        policy = node.policy
        if truth.egress_class is EgressClass.RE_PREFER:
            policy.set_neighbor_localpref(re_provider, LP_RE_HIGH)
            if commodity is not None:
                policy.set_neighbor_localpref(commodity, LP_BASE)
        elif truth.egress_class is EgressClass.COMMODITY_PREFER:
            policy.set_neighbor_localpref(re_provider, LP_BASE)
            if commodity is not None:
                policy.set_neighbor_localpref(commodity, LP_RE_HIGH)
        else:  # EQUAL
            policy.set_neighbor_localpref(re_provider, LP_BASE)
            if commodity is not None:
                policy.set_neighbor_localpref(commodity, LP_BASE)
        if truth.age_tiebreak_only:
            policy.path_length_sensitive = False
        if truth.hidden_commodity and commodity is not None:
            policy.no_export_to.add(commodity)
        if commodity is not None and truth.visible_commodity:
            if truth.prepend_class is PrependClass.MORE_COMMODITY:
                count = weighted_choice(
                    rng,
                    self.config.prepend_more_commodity_counts,
                    self.config.prepend_more_commodity_weights,
                )
                policy.set_export_prepends(commodity, count)
            elif truth.prepend_class is PrependClass.MORE_RE:
                count = weighted_choice(
                    rng,
                    self.config.prepend_more_re_counts,
                    self.config.prepend_more_re_weights,
                )
                policy.set_export_prepends(re_provider, count)

    def _originate_member_prefixes(self, rng, truth: MemberTruth) -> None:
        config = self.config
        count = sample_heavy_tailed_count(
            rng, config.mean_prefixes_per_member,
            config.max_prefixes_per_member,
        )
        for _ in range(count):
            length = weighted_choice(
                rng, (24, 22, 21, 20, 16), (0.60, 0.12, 0.09, 0.09, 0.10)
            )
            prefix = self.alloc.allocate(length)
            self.topo.originate(truth.asn, prefix, side=truth.side)
            self.prefix_plans[prefix] = PrefixPlan(
                prefix=prefix, origin_asn=truth.asn, side=truth.side
            )
            if rng.random() < config.covered_prefix_rate:
                covered = self.alloc.carve_covered(prefix)
                self.topo.originate(truth.asn, covered, side=truth.side,
                                    tags=("covered",))
                self.prefix_plans[covered] = PrefixPlan(
                    prefix=covered, origin_asn=truth.asn, side=truth.side,
                    kind=PrefixKind.COVERED, covered_by=prefix,
                )

    # ----- asymmetric R&E transits (NIKS and friends) ------------------------

    def _build_asym_transits(self) -> None:
        rng = self.tree.child("asym").rng()
        config = self.config
        # NIKS is the canonical [always-RE in SURF, switch in Internet2]
        # instance with the largest cone.
        cells = [
            ("geant-peer", 102, "nordunet-provider", 50,
             config.niks_members_full, config.niks_prefixes_full,
             asns.AS_NIKS, "NIKS"),
        ]
        for index, cell in enumerate(config.asym_cells_full):
            cells.append(
                cell + (asns.ASYM_TRANSIT_BASE + index,
                        "asym-transit-%d" % index)
            )
        for (surf_kind, surf_lp, i2_kind, i2_lp, members_full,
             prefixes_full, asn, name) in cells:
            node = self.topo.add_as(asn, name, ASClass.NREN, country="RU"
                                    if name == "NIKS" else None)
            self._wire_asym_side(node, surf_kind, surf_lp)
            self._wire_asym_side(node, i2_kind, i2_lp)
            self.topo.add_provider(asn, asns.AS_ARELION)
            node.policy.set_neighbor_localpref(asns.AS_ARELION, 50)
            self.asym_transits.append(asn)
            n_members = config.scaled(members_full)
            n_prefixes = max(n_members, config.scaled(prefixes_full))
            self._build_asym_cone(rng, asn, node.country, n_members,
                                  n_prefixes)

    def _wire_asym_side(self, node, kind: str, localpref: int) -> None:
        topo = self.topo
        if kind == "geant-peer":
            topo.add_peering(node.asn, asns.AS_GEANT)
            node.policy.set_neighbor_localpref(asns.AS_GEANT, localpref)
        elif kind == "geant-provider":
            topo.add_provider(node.asn, asns.AS_GEANT)
            node.policy.set_neighbor_localpref(asns.AS_GEANT, localpref)
        elif kind == "i2-peer":
            topo.add_peering(node.asn, asns.AS_INTERNET2)
            node.policy.set_neighbor_localpref(asns.AS_INTERNET2, localpref)
        elif kind == "nordunet-provider":
            topo.add_provider(node.asn, asns.AS_NORDUNET)
            node.policy.set_neighbor_localpref(asns.AS_NORDUNET, localpref)
        else:
            raise TopologyError("unknown asym side kind %r" % (kind,))

    def _build_asym_cone(
        self, rng, transit_asn: int, country: Optional[str],
        n_members: int, n_prefixes: int,
    ) -> None:
        """Members single-homed behind an asymmetric transit; their
        return routing is entirely the transit's choice."""
        remaining = n_prefixes
        for index in range(n_members):
            asn = next(self._member_asn)
            self.topo.add_as(asn, "cone-%d-%d" % (transit_asn, index),
                             ASClass.MEMBER, country=country or "RU")
            self.topo.add_provider(asn, transit_asn)
            share = max(1, round(remaining / (n_members - index)))
            truth = MemberTruth(
                asn=asn,
                egress_class=EgressClass.RE_PREFER,
                prepend_class=PrependClass.NO_COMMODITY,
                side=MemberSide.PEER_NREN,
                country=country or "RU",
                visible_commodity=False,
                behind_transit=transit_asn,
                re_neighbors=[transit_asn],
            )
            self.members[asn] = truth
            for _ in range(share):
                prefix = self.alloc.allocate(24)
                self.topo.originate(asn, prefix, side=MemberSide.PEER_NREN)
                self.prefix_plans[prefix] = PrefixPlan(
                    prefix=prefix, origin_asn=asn,
                    side=MemberSide.PEER_NREN,
                )
            remaining -= share

    # ----- measurement hosts, RIPE ------------------------------------------

    def _build_measurement_and_ripe(self) -> None:
        topo = self.topo
        topo.add_as(asns.AS_INTERNET2_BLEND, "Meas-commodity",
                    ASClass.MEASUREMENT, country="US")
        topo.add_provider(asns.AS_INTERNET2_BLEND, asns.AS_LUMEN)
        topo.add_as(asns.AS_SURF_ORIGIN, "Meas-RE-SURF",
                    ASClass.MEASUREMENT, country="NL")
        topo.add_provider(asns.AS_SURF_ORIGIN, asns.AS_SURF)
        # The Internet2 experiment originates from AS 11537 itself.

        ripe = topo.add_as(asns.AS_RIPE, "RIPE", ASClass.MEMBER,
                           country="NL")
        topo.add_provider(asns.AS_RIPE, asns.AS_SURF)
        topo.add_provider(asns.AS_RIPE, asns.AS_DT)
        topo.add_provider(asns.AS_RIPE, asns.AS_ARELION)
        for neighbor in (asns.AS_SURF, asns.AS_DT, asns.AS_ARELION):
            ripe.policy.set_neighbor_localpref(neighbor, LP_BASE)
        self.members[asns.AS_RIPE] = MemberTruth(
            asn=asns.AS_RIPE,
            egress_class=EgressClass.EQUAL,
            prepend_class=PrependClass.EQUAL,
            side=MemberSide.PEER_NREN,
            country="NL",
            visible_commodity=True,
            re_neighbors=[asns.AS_SURF],
            commodity_neighbors=[asns.AS_DT, asns.AS_ARELION],
        )

    # ----- probing plans -------------------------------------------------------

    def _plan_systems(self) -> None:
        rng = self.tree.child("systems").rng()
        config = self.config
        for plan in self.prefix_plans.values():
            if plan.kind is PrefixKind.COVERED:
                continue
            plan.isi_covered = rng.random() < config.isi_coverage
            plan.censys_covered = rng.random() < config.censys_coverage
            if not (plan.isi_covered or plan.censys_covered):
                continue
            if rng.random() >= config.alive_given_covered:
                continue  # covered but no longer responsive
            if rng.random() < config.three_systems_rate:
                n_alive = 3
            else:
                n_alive = rng.choice((1, 2))
            kind = PrefixKind.NORMAL
            roll = rng.random()
            if roll < config.mixed_prefix_rate and n_alive == 3:
                kind = PrefixKind.MIXED
            elif roll < (config.mixed_prefix_rate
                         + config.interconnect_prefix_rate):
                kind = PrefixKind.INTERCONNECT
            plan.kind = kind
            self._attach_systems(rng, plan, n_alive)

    def _offnet_asn(self, rng, origin_asn: int) -> int:
        """An AS that an interconnect-router address actually belongs to
        (§4.1.2): the origin's commodity provider when it has one,
        otherwise a random transit."""
        truth = self.members.get(origin_asn)
        if truth is not None and truth.commodity_neighbors:
            return truth.commodity_neighbors[0]
        pool = self.shallow_transits or self.tier1s
        return rng.choice(pool)

    def _attach_systems(self, rng, plan: PrefixPlan, n_alive: int) -> None:
        config = self.config
        if plan.isi_covered and plan.censys_covered:
            source_mode = weighted_choice(
                rng, ("isi", "censys", "mixed"), (0.60, 0.25, 0.15)
            )
        elif plan.isi_covered:
            source_mode = "isi"
        else:
            source_mode = "censys"
        offsets = rng.sample(
            range(1, min(plan.prefix.num_addresses - 1, 240)),
            min(n_alive, plan.prefix.num_addresses - 2),
        )
        offnet = None
        if plan.kind in (PrefixKind.MIXED, PrefixKind.INTERCONNECT):
            offnet = self._offnet_asn(rng, plan.origin_asn)
        for index, offset in enumerate(offsets):
            if source_mode == "mixed":
                source = "isi" if index % 2 == 0 else "censys"
            else:
                source = source_mode
            attached = plan.origin_asn
            if plan.kind is PrefixKind.INTERCONNECT:
                attached = offnet
            elif plan.kind is PrefixKind.MIXED and index == len(offsets) - 1:
                attached = offnet
            loss = config.base_loss_probability
            if rng.random() < config.flaky_system_rate:
                loss = config.flaky_loss_probability
            plan.systems.append(
                SystemPlan(
                    address=plan.prefix.address_at(offset),
                    prefix=plan.prefix,
                    attached_asn=attached,
                    seed_source=source,
                    alive=True,
                    loss_probability=loss,
                )
            )

    # ----- collectors ------------------------------------------------------------

    def _select_feeders(self, ecosystem: Ecosystem) -> FeederPlan:
        rng = self.tree.child("feeders").rng()
        config = self.config
        plan = FeederPlan()
        candidates = (
            self.shallow_transits + self.deep_transits
            + self.deep2_transits + self.tier1s
        )
        n_commodity = min(config.n_commodity_feeders(), len(candidates))
        low, high = config.commodity_feeder_sessions
        for asn in rng.sample(candidates, n_commodity):
            plan.commodity_sessions[asn] = rng.randint(low, high)
        re_candidates = [asns.AS_GEANT, asns.AS_NORDUNET, asns.AS_CANARIE,
                         asns.AS_AARNET, asns.AS_SURF]
        low, high = config.re_feeder_sessions
        for asn in re_candidates[: config.n_re_feeders]:
            plan.re_sessions[asn] = rng.randint(low, high)

        # Member feeders for Table 3: responsive members with the
        # diversity the validation needs.
        responsive_members = sorted(
            {
                p.origin_asn
                for p in self.prefix_plans.values()
                if p.alive_systems and p.origin_asn in self.members
            }
        )
        vrf_candidates = [
            asn
            for asn in responsive_members
            if self.members[asn].egress_class is EgressClass.RE_PREFER
            and self.members[asn].visible_commodity
        ]
        n_member = min(config.n_member_feeders, len(responsive_members))
        chosen = rng.sample(responsive_members, n_member)
        vrf_pool = [asn for asn in vrf_candidates if asn in chosen]
        missing = config.n_vrf_split_feeders - len(vrf_pool)
        if missing > 0:
            extras = [a for a in vrf_candidates if a not in chosen][:missing]
            chosen = chosen[: n_member - len(extras)] + extras
            vrf_pool += extras
        plan.member_feeders = sorted(chosen)
        plan.vrf_split_feeders = sorted(
            vrf_pool[: config.n_vrf_split_feeders]
        )
        for asn in plan.vrf_split_feeders:
            self.topo.node(asn).tags.add("vrf-split")

        plan.tie_feeder = self._make_tie_feeder(rng, plan)
        return plan

    def _make_tie_feeder(self, rng, plan: FeederPlan) -> Optional[int]:
        """Engineer the Table 3 AS with no most-frequent inference: a
        member feeder with exactly two responsive prefixes in different
        categories (one normal, one on an interconnect router)."""
        for asn in plan.member_feeders:
            truth = self.members.get(asn)
            if truth is None or truth.egress_class is not EgressClass.RE_PREFER:
                continue
            responsive = [
                p for p in self.prefix_plans.values()
                if p.origin_asn == asn and p.alive_systems
            ]
            if len(responsive) != 2:
                continue
            normal = [p for p in responsive if p.kind is PrefixKind.NORMAL]
            if not normal:
                continue
            target = normal[-1]
            target.kind = PrefixKind.INTERCONNECT
            offnet = self._offnet_asn(rng, asn)
            for system in target.systems:
                system.attached_asn = offnet
            return asn
        return None

    # ----- outages ------------------------------------------------------------------

    def _plan_outages(self, ecosystem: Ecosystem) -> List[OutageEvent]:
        rng = self.tree.child("outages").rng()
        config = self.config
        feeder_set = set(ecosystem.feeders.member_feeders)
        responsive_counts: Dict[int, int] = {}
        for plan in self.prefix_plans.values():
            if plan.alive_systems and plan.kind is PrefixKind.NORMAL:
                responsive_counts[plan.origin_asn] = (
                    responsive_counts.get(plan.origin_asn, 0) + 1
                )
        victims = [
            truth
            for truth in self.members.values()
            if truth.egress_class is EgressClass.RE_PREFER
            and truth.visible_commodity
            and truth.asn not in feeder_set
            and truth.behind_transit is None
            and responsive_counts.get(truth.asn, 0) >= 1
        ]
        # The paper's unexpected switches and oscillations touched 1-3
        # prefixes each; prefer single-prefix victims so one outage does
        # not flip a large cone.
        victims.sort(
            key=lambda t: (responsive_counts[t.asn], rng.random()),
            reverse=True,
        )
        events: List[OutageEvent] = []

        def take(count: int, experiment: str, oscillate: bool) -> None:
            for _ in range(count):
                if not victims:
                    return
                truth = victims.pop()
                re_link = truth.re_neighbors[0]
                if oscillate:
                    events.append(
                        OutageEvent(
                            experiment=experiment,
                            down_after_round=2,
                            up_after_round=4,
                            a=truth.asn,
                            b=re_link,
                            victim_asn=truth.asn,
                        )
                    )
                else:
                    events.append(
                        OutageEvent(
                            experiment=experiment,
                            down_after_round=5,
                            up_after_round=None,
                            a=truth.asn,
                            b=re_link,
                            victim_asn=truth.asn,
                        )
                    )

        take(config.surf_switch_to_commodity, "surf", False)
        take(config.surf_oscillating, "surf", True)
        take(config.internet2_switch_to_commodity, "internet2", False)
        take(config.internet2_oscillating, "internet2", True)
        return events
