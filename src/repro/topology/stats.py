"""Topology statistics.

Summaries used by the examples and by EXPERIMENTS.md to document the
generated population: class counts, link-degree distributions, customer
cone sizes, and prefix-count distributions — the quantities one would
report about the real R&E ecosystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .graph import ASClass, Topology


@dataclass
class DistributionSummary:
    """Five-number-ish summary of an integer distribution."""

    count: int = 0
    total: int = 0
    minimum: int = 0
    maximum: int = 0
    mean: float = 0.0
    median: int = 0

    @classmethod
    def of(cls, values: List[int]) -> "DistributionSummary":
        if not values:
            return cls()
        ordered = sorted(values)
        return cls(
            count=len(ordered),
            total=sum(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            mean=sum(ordered) / len(ordered),
            median=ordered[len(ordered) // 2],
        )


@dataclass
class TopologyStats:
    """Aggregate statistics for a topology."""

    num_ases: int = 0
    num_links: int = 0
    class_counts: Dict[ASClass, int] = field(default_factory=dict)
    degree: DistributionSummary = field(
        default_factory=DistributionSummary
    )
    member_prefix_counts: DistributionSummary = field(
        default_factory=DistributionSummary
    )
    customer_cone: DistributionSummary = field(
        default_factory=DistributionSummary
    )
    num_prefixes: int = 0

    def render(self) -> str:
        lines = [
            "Topology: %d ASes, %d links, %d prefixes"
            % (self.num_ases, self.num_links, self.num_prefixes),
            "  classes: "
            + ", ".join(
                "%s=%d" % (klass.value, count)
                for klass, count in sorted(
                    self.class_counts.items(), key=lambda kv: -kv[1]
                )
            ),
            "  degree: mean %.1f, median %d, max %d"
            % (self.degree.mean, self.degree.median, self.degree.maximum),
            "  member prefixes: mean %.1f, median %d, max %d"
            % (
                self.member_prefix_counts.mean,
                self.member_prefix_counts.median,
                self.member_prefix_counts.maximum,
            ),
            "  transit customer cones: mean %.1f, max %d"
            % (self.customer_cone.mean, self.customer_cone.maximum),
        ]
        return "\n".join(lines)


def customer_cone_sizes(topology: Topology) -> Dict[int, int]:
    """Number of ASes in each AS's customer cone (itself excluded),
    computed over the provider->customer DAG."""
    memo: Dict[int, frozenset] = {}

    def cone(asn: int) -> frozenset:
        cached = memo.get(asn)
        if cached is not None:
            return cached
        members = set()
        for customer in topology.customers(asn):
            members.add(customer)
            members |= cone(customer)
        result = frozenset(members)
        memo[asn] = result
        return result

    # Iterative order: customers first (the graph is validated acyclic,
    # but recursion depth could bite on deep chains — resolve leaves
    # upward explicitly).
    remaining = sorted(
        topology.nodes, key=lambda asn: len(topology.customers(asn))
    )
    for asn in remaining:
        cone(asn)
    return {asn: len(memo[asn]) for asn in topology.nodes}


def compute_stats(topology: Topology) -> TopologyStats:
    """Compute the aggregate statistics for a topology."""
    stats = TopologyStats(
        num_ases=len(topology),
        num_links=topology.num_links(),
        num_prefixes=len(topology.prefixes),
    )
    degrees: List[int] = []
    member_prefixes: List[int] = []
    for node in topology.ases():
        stats.class_counts[node.klass] = (
            stats.class_counts.get(node.klass, 0) + 1
        )
        degrees.append(len(topology.neighbors(node.asn)))
        if node.klass is ASClass.MEMBER:
            member_prefixes.append(len(topology.prefixes_of(node.asn)))
    stats.degree = DistributionSummary.of(degrees)
    stats.member_prefix_counts = DistributionSummary.of(member_prefixes)
    cones = customer_cone_sizes(topology)
    transit_cones = [
        size
        for asn, size in cones.items()
        if topology.node(asn).klass
        in (ASClass.TIER1, ASClass.TRANSIT, ASClass.RE_BACKBONE,
            ASClass.NREN, ASClass.RE_REGIONAL)
    ]
    stats.customer_cone = DistributionSummary.of(transit_cones)
    return stats
