"""AS-level topology: nodes, relationships, prefixes, and generators.

- :mod:`repro.topology.graph` — the :class:`Topology` container;
- :mod:`repro.topology.scenarios` — small hand-built topologies from the
  paper's figures (Columbia/Figure 1, NIKS/Figure 4, IXP/Figure 6);
- :mod:`repro.topology.re_ecosystem` — the parameterised synthetic R&E
  ecosystem generator used by the headline experiments.
"""

from .graph import ASClass, ASNode, Topology
from .scenarios import (
    build_columbia_scenario,
    build_ixp_scenario,
    build_niks_scenario,
)
from .re_ecosystem import REEcosystemConfig, build_ecosystem

__all__ = [
    "ASClass",
    "ASNode",
    "Topology",
    "build_columbia_scenario",
    "build_ixp_scenario",
    "build_niks_scenario",
    "REEcosystemConfig",
    "build_ecosystem",
]
