"""The AS-level topology container.

A :class:`Topology` holds AS nodes, their inter-AS links (with business
relationships and R&E-fabric flags), per-AS routing policies, and prefix
originations.  Both propagation engines and all analyses read from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Set

from ..errors import TopologyError
from ..netutil import Prefix
from ..bgp.policy import Rel, RoutingPolicy


class ASClass(Enum):
    """Coarse role of an AS in the ecosystem."""

    TIER1 = "tier1"                    # commodity tier-1 backbone
    TRANSIT = "transit"                # commodity transit / regional ISP
    RE_BACKBONE = "re-backbone"        # Internet2, GEANT, NORDUnet, ...
    NREN = "nren"                      # national R&E network (Peer-NREN side)
    RE_REGIONAL = "re-regional"        # U.S. regional (NYSERNet, CENIC, ...)
    MEMBER = "member"                  # R&E member institution
    MEASUREMENT = "measurement"        # measurement-prefix origin ASes
    OTHER = "other"

    @property
    def is_re(self) -> bool:
        """Does this class carry R&E routing (for upstream typing)?"""
        return self in (
            ASClass.RE_BACKBONE,
            ASClass.NREN,
            ASClass.RE_REGIONAL,
        )


class MemberSide(Enum):
    """Which Internet2 neighbor class a member's prefixes belong to (§2.1)."""

    PARTICIPANT = "participant"   # U.S. domestic R&E
    PEER_NREN = "peer-nren"       # international R&E


@dataclass
class ASNode:
    """One AS: identity, class, geography, policy, and tags."""

    asn: int
    name: str
    klass: ASClass
    country: Optional[str] = None
    us_state: Optional[str] = None
    policy: RoutingPolicy = field(default_factory=RoutingPolicy)
    tags: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.asn < 0:
            raise TopologyError("ASN must be non-negative: %r" % (self.asn,))


@dataclass(frozen=True)
class Link:
    """An inter-AS link.  ``rel`` is the relationship of ``b`` as seen
    from ``a`` (``Rel.CUSTOMER`` means *b is a's customer*).  ``fabric``
    marks R&E-fabric links eligible for peer->peer re-export."""

    a: int
    b: int
    rel: Rel
    fabric: bool = False


@dataclass
class PrefixInfo:
    """Metadata for one originated prefix."""

    prefix: Prefix
    origin_asn: int
    side: Optional[MemberSide] = None
    tags: Set[str] = field(default_factory=set)


class Topology:
    """A mutable AS-level topology.

    Neighbor relationships are stored from each endpoint's perspective,
    so ``topology.rel(a, b)`` answers "what is b to a?".
    """

    def __init__(self) -> None:
        self.nodes: Dict[int, ASNode] = {}
        self._neighbors: Dict[int, Dict[int, Rel]] = {}
        self._fabric: Set[frozenset] = set()
        self.prefixes: Dict[Prefix, PrefixInfo] = {}
        self._origins: Dict[int, List[Prefix]] = {}

    # ----- nodes -------------------------------------------------------

    def add_as(
        self,
        asn: int,
        name: str,
        klass: ASClass = ASClass.OTHER,
        country: Optional[str] = None,
        us_state: Optional[str] = None,
        policy: Optional[RoutingPolicy] = None,
    ) -> ASNode:
        """Create and register an AS node."""
        if asn in self.nodes:
            raise TopologyError("duplicate ASN %d" % asn)
        node = ASNode(
            asn=asn,
            name=name,
            klass=klass,
            country=country,
            us_state=us_state,
            policy=policy if policy is not None else RoutingPolicy(),
        )
        self.nodes[asn] = node
        self._neighbors[asn] = {}
        return node

    def node(self, asn: int) -> ASNode:
        try:
            return self.nodes[asn]
        except KeyError:
            raise TopologyError("unknown ASN %d" % asn) from None

    def __contains__(self, asn: int) -> bool:
        return asn in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def ases(self) -> Iterator[ASNode]:
        return iter(self.nodes.values())

    def ases_of_class(self, klass: ASClass) -> List[ASNode]:
        return [node for node in self.nodes.values() if node.klass is klass]

    def tagged(self, tag: str) -> List[ASNode]:
        return [node for node in self.nodes.values() if tag in node.tags]

    # ----- links -------------------------------------------------------

    def add_link(
        self, a: int, b: int, rel_of_b_from_a: Rel, fabric: bool = False
    ) -> None:
        """Link ASes *a* and *b*; ``rel_of_b_from_a`` is what *b* is to
        *a* (e.g. ``Rel.CUSTOMER`` means b is a's customer)."""
        if a == b:
            raise TopologyError("self-link on ASN %d" % a)
        for asn in (a, b):
            if asn not in self.nodes:
                raise TopologyError("unknown ASN %d" % asn)
        if b in self._neighbors[a]:
            raise TopologyError("duplicate link %d-%d" % (a, b))
        self._neighbors[a][b] = rel_of_b_from_a
        self._neighbors[b][a] = rel_of_b_from_a.flipped()
        if fabric:
            self._fabric.add(frozenset((a, b)))

    def add_provider(self, customer: int, provider: int) -> None:
        """Convenience: *provider* provides transit to *customer*."""
        self.add_link(customer, provider, Rel.PROVIDER)

    def add_peering(self, a: int, b: int, fabric: bool = False) -> None:
        self.add_link(a, b, Rel.PEER, fabric=fabric)

    def rel(self, a: int, b: int) -> Rel:
        """Relationship of *b* from *a*'s perspective."""
        try:
            return self._neighbors[a][b]
        except KeyError:
            raise TopologyError("no link %d-%d" % (a, b)) from None

    def has_link(self, a: int, b: int) -> bool:
        return b in self._neighbors.get(a, {})

    def is_fabric(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._fabric

    def neighbors(self, asn: int) -> Dict[int, Rel]:
        """Neighbors of *asn* mapped to their relationship from *asn*'s
        perspective (a copy-free live view; do not mutate)."""
        try:
            return self._neighbors[asn]
        except KeyError:
            raise TopologyError("unknown ASN %d" % asn) from None

    def neighbors_with_rel(self, asn: int, rel: Rel) -> List[int]:
        return [
            nbr for nbr, r in self.neighbors(asn).items() if r is rel
        ]

    def customers(self, asn: int) -> List[int]:
        return self.neighbors_with_rel(asn, Rel.CUSTOMER)

    def providers(self, asn: int) -> List[int]:
        return self.neighbors_with_rel(asn, Rel.PROVIDER)

    def peers(self, asn: int) -> List[int]:
        return self.neighbors_with_rel(asn, Rel.PEER)

    def links(self) -> Iterator[Link]:
        """Iterate every link once (from the lower-ASN endpoint)."""
        for a in sorted(self._neighbors):
            for b, rel in sorted(self._neighbors[a].items()):
                if a < b:
                    yield Link(a, b, rel, self.is_fabric(a, b))

    def num_links(self) -> int:
        return sum(1 for _ in self.links())

    # ----- prefixes ----------------------------------------------------

    def originate(
        self,
        asn: int,
        prefix: Prefix,
        side: Optional[MemberSide] = None,
        tags: Optional[Iterable[str]] = None,
    ) -> PrefixInfo:
        """Register *prefix* as originated by *asn*."""
        if asn not in self.nodes:
            raise TopologyError("unknown ASN %d" % asn)
        if prefix in self.prefixes:
            raise TopologyError("prefix %s already originated" % prefix)
        info = PrefixInfo(
            prefix=prefix,
            origin_asn=asn,
            side=side,
            tags=set(tags) if tags else set(),
        )
        self.prefixes[prefix] = info
        self._origins.setdefault(asn, []).append(prefix)
        return info

    def origin_of(self, prefix: Prefix) -> int:
        try:
            return self.prefixes[prefix].origin_asn
        except KeyError:
            raise TopologyError("prefix %s not originated" % prefix) from None

    def prefixes_of(self, asn: int) -> List[Prefix]:
        return list(self._origins.get(asn, []))

    # ----- upstream classification (§4.2) -------------------------------

    def re_neighbors_of(self, asn: int) -> List[int]:
        """Neighbors of *asn* that are R&E networks (provider or peer)."""
        return [
            nbr
            for nbr, rel in self.neighbors(asn).items()
            if rel in (Rel.PROVIDER, Rel.PEER)
            and self.nodes[nbr].klass.is_re
        ]

    def commodity_neighbors_of(self, asn: int) -> List[int]:
        """Neighbors of *asn* that are commodity upstreams."""
        return [
            nbr
            for nbr, rel in self.neighbors(asn).items()
            if rel in (Rel.PROVIDER, Rel.PEER)
            and not self.nodes[nbr].klass.is_re
            and self.nodes[nbr].klass is not ASClass.MEASUREMENT
        ]

    # ----- sanity checks ------------------------------------------------

    def validate(self) -> None:
        """Raise TopologyError if the customer-provider digraph has a
        cycle (providers must form a hierarchy) or references dangle."""
        state: Dict[int, int] = {}  # 0 unvisited, 1 in-stack, 2 done

        def visit(asn: int) -> None:
            stack = [(asn, iter(self.providers(asn)))]
            state[asn] = 1
            while stack:
                current, providers = stack[-1]
                advanced = False
                for provider in providers:
                    mark = state.get(provider, 0)
                    if mark == 1:
                        raise TopologyError(
                            "customer-provider cycle through AS %d"
                            % provider
                        )
                    if mark == 0:
                        state[provider] = 1
                        stack.append(
                            (provider, iter(self.providers(provider)))
                        )
                        advanced = True
                        break
                if not advanced:
                    state[current] = 2
                    stack.pop()

        for asn in self.nodes:
            if state.get(asn, 0) == 0:
                visit(asn)

        for prefix, info in self.prefixes.items():
            if info.origin_asn not in self.nodes:
                raise TopologyError(
                    "prefix %s originated by unknown AS %d"
                    % (prefix, info.origin_asn)
                )
