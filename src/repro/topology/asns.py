"""Well-known ASNs used throughout the reproduction.

Real-world ASNs from the paper are used for the named networks;
generated ASes draw from the synthetic ranges below so they can never
collide with the named ones.
"""

from __future__ import annotations

# Measurement announcements (§3.3).
AS_INTERNET2 = 11537          # Internet2 R&E — R&E origin in the June run
AS_INTERNET2_BLEND = 396955   # commodity origin (blend), via Lumen
AS_SURF = 1103                # SURF — R&E transit for the May run
AS_SURF_ORIGIN = 1125         # R&E origin in the May run

# Commodity networks named in the paper.
AS_LUMEN = 3356
AS_COGENT = 174
AS_ARELION = 1299
AS_DT = 3320

# R&E networks named in the paper.
AS_GEANT = 20965
AS_NORDUNET = 2603
AS_NYSERNET = 3754
AS_CENIC = 2152
AS_NIKS = 3267

# Other named networks.
AS_RIPE = 3333
AS_ESNET = 293
AS_CANARIE = 6509
AS_AARNET = 7575

# Synthetic allocation ranges (kept disjoint).
TIER1_BASE = 5000
TRANSIT_BASE = 30000
NREN_BASE = 40000
REGIONAL_BASE = 45000
ASYM_TRANSIT_BASE = 48000
MEMBER_BASE = 100000
COLLECTOR_BASE = 900000
