"""Converged collector-view RIB snapshots over the studied prefixes.

Two consumers:

- Figure 5 needs the route an R&E-connected observer (the RIPE
  analogue) selects for *every* studied prefix;
- Table 4 needs the origin-AS prepending visible in collected AS paths
  toward R&E vs commodity neighbors.

Routes for all prefixes of one origin propagate identically, and
origins with the same attachment signature (same upstreams, same
export prepends, same no-export sets) propagate identically up to the
origin ASN in the path — so the builder memoizes fastpath runs by
signature and substitutes origin ASNs, keeping full-scale analyses
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..bgp.attributes import Announcement
from ..bgp.fastpath import propagate_fastpath
from ..netutil import Prefix
from ..topology.graph import ASClass, Topology
from ..topology.re_ecosystem import Ecosystem


@dataclass(frozen=True)
class RIBEntry:
    """One observer's selected route for one prefix."""

    prefix: Prefix
    path: Tuple[int, ...]
    first_hop: int
    origin_asn: int

    def origin_prepends(self) -> int:
        """Extra origin copies at the path tail."""
        origin = self.path[-1]
        count = 0
        for asn in reversed(self.path):
            if asn != origin:
                break
            count += 1
        return count - 1


@dataclass
class CollectorRIB:
    """Per-observer RIB snapshots."""

    observers: List[int]
    entries: Dict[int, Dict[Prefix, RIBEntry]] = field(default_factory=dict)
    fastpath_runs: int = 0
    memo_hits: int = 0

    def route(self, observer: int, prefix: Prefix) -> Optional[RIBEntry]:
        return self.entries.get(observer, {}).get(prefix)

    def routes_of(self, observer: int) -> Dict[Prefix, RIBEntry]:
        return self.entries.get(observer, {})


def _origin_signature(topology: Topology, origin: int) -> Tuple:
    policy = topology.node(origin).policy
    return tuple(
        sorted(
            (
                neighbor,
                rel.value,
                policy.prepends_toward(neighbor),
                neighbor in policy.no_export_to,
            )
            for neighbor, rel in topology.neighbors(origin).items()
        )
    )


def build_collector_rib(
    ecosystem: Ecosystem,
    observers: Iterable[int],
    prefixes: Optional[Iterable[Prefix]] = None,
) -> CollectorRIB:
    """Compute each observer's converged route for every studied prefix
    (or the given subset)."""
    topology = ecosystem.topology
    observer_list = sorted(set(observers))
    rib = CollectorRIB(observers=observer_list)
    for observer in observer_list:
        rib.entries[observer] = {}

    if prefixes is None:
        plans = ecosystem.studied_prefixes()
        wanted = [(plan.prefix, plan.origin_asn) for plan in plans]
    else:
        wanted = [
            (prefix, topology.origin_of(prefix)) for prefix in prefixes
        ]

    by_origin: Dict[int, List[Prefix]] = {}
    for prefix, origin in wanted:
        by_origin.setdefault(origin, []).append(prefix)

    # Memoize observer paths by origin attachment signature.
    memo: Dict[Tuple, Dict[int, Optional[Tuple[int, ...]]]] = {}
    for origin in sorted(by_origin):
        signature = _origin_signature(topology, origin)
        cached = memo.get(signature)
        if cached is None:
            representative = by_origin[origin][0]
            result = propagate_fastpath(
                topology,
                [Announcement(prefix=representative, origin_asn=origin)],
            )
            rib.fastpath_runs += 1
            cached = {}
            for observer in observer_list:
                route = result.route_at(observer)
                if route is None:
                    cached[observer] = None
                else:
                    # Substitute a placeholder for the origin ASN so the
                    # cache applies to signature-equal origins.
                    cached[observer] = tuple(
                        -1 if asn == origin else asn
                        for asn in route.path.asns
                    )
            memo[signature] = cached
        else:
            rib.memo_hits += 1
        for observer in observer_list:
            template = cached[observer]
            if template is None:
                continue
            path = tuple(origin if a == -1 else a for a in template)
            for prefix in by_origin[origin]:
                rib.entries[observer][prefix] = RIBEntry(
                    prefix=prefix,
                    path=path,
                    first_hop=path[0],
                    origin_asn=path[-1],
                )
    return rib


def neighbor_is_re(topology: Topology, asn: int) -> bool:
    """Is this AS part of the R&E ecosystem for upstream classification
    (§4.2: Participant or Peer-NREN routes observed by Internet2)?"""
    return topology.node(asn).klass.is_re


@dataclass(frozen=True)
class PrependObservation:
    """Origin prepending visible in collected routes for one prefix
    (§4.2): extra origin prepends toward R&E and commodity neighbors,
    the latter None when no commodity route is observed."""

    prefix: Prefix
    re_prepends: int
    commodity_prepends: Optional[int]

    @property
    def has_commodity(self) -> bool:
        return self.commodity_prepends is not None


def observe_origin_prepending(
    ecosystem: Ecosystem,
) -> Dict[Prefix, PrependObservation]:
    """Reconstruct, per prefix, the origin-AS prepending a collector
    observes toward R&E vs commodity upstreams.

    A commodity-side route is observable only when the origin actually
    exports to a commodity neighbor; origins with hidden commodity
    egress land in the "no commodity" column exactly as in the paper.
    """
    topology = ecosystem.topology
    out: Dict[Prefix, PrependObservation] = {}
    for plan in ecosystem.studied_prefixes():
        origin = plan.origin_asn
        policy = topology.node(origin).policy
        re_counts: List[int] = []
        commodity_counts: List[int] = []
        for neighbor in topology.neighbors(origin):
            if neighbor in policy.no_export_to:
                continue
            if neighbor_is_re(topology, neighbor):
                re_counts.append(policy.prepends_toward(neighbor))
            elif topology.node(neighbor).klass in (
                ASClass.TIER1, ASClass.TRANSIT
            ):
                commodity_counts.append(policy.prepends_toward(neighbor))
        out[plan.prefix] = PrependObservation(
            prefix=plan.prefix,
            re_prepends=min(re_counts) if re_counts else 0,
            commodity_prepends=(
                min(commodity_counts) if commodity_counts else None
            ),
        )
    return out
