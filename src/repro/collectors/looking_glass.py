"""Looking glass substrate.

Wang & Gao (2003) and Kastanakis et al. (2023) inferred localpref
policies from router looking glasses, and the paper confirmed NIKS's
policy via its public looking glass [27].  This module exposes the
same view over simulated routers: structured candidate routes with
their localpref values, plus a textual ``show ip bgp``-style rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bgp.engine import PropagationEngine
from ..bgp.router import Router
from ..errors import AnalysisError
from ..netutil import Prefix
from ..topology.graph import Topology


@dataclass(frozen=True)
class LGEntry:
    """One candidate route as a looking glass shows it."""

    neighbor_asn: Optional[int]
    path: tuple
    localpref: int
    best: bool

    def render(self) -> str:
        marker = "*>" if self.best else "* "
        path_text = " ".join(str(asn) for asn in self.path)
        return "%s %-40s LocPrf %d" % (marker, path_text or "local",
                                       self.localpref)


class LookingGlass:
    """A read-only window onto one AS's BGP state."""

    def __init__(self, asn: int, router: Router,
                 topology: Topology) -> None:
        self.asn = asn
        self._router = router
        self._topology = topology

    def routes(self, prefix: Prefix) -> List[LGEntry]:
        """All candidate routes for *prefix*, best first."""
        best = self._router.best_route(prefix)
        entries = [
            LGEntry(
                neighbor_asn=route.learned_from,
                path=route.path.asns,
                localpref=route.localpref,
                best=route == best,
            )
            for route in self._router.candidate_routes(prefix)
        ]
        entries.sort(key=lambda e: (not e.best, e.neighbor_asn or -1))
        return entries

    def neighbor_localprefs(self) -> Dict[int, int]:
        """Localpref assigned per neighbor, as visible from routes the
        looking glass currently holds (what the 2003/2023 studies
        scraped)."""
        seen: Dict[int, int] = {}
        for prefix in self._router.adj_rib_in:
            for route in self._router.candidate_routes(prefix):
                if route.learned_from is not None:
                    seen[route.learned_from] = route.localpref
        return seen

    def show_bgp(self, prefix: Prefix) -> str:
        """Textual ``show ip bgp <prefix>`` output."""
        entries = self.routes(prefix)
        if not entries:
            return "%% Network not in table"
        lines = ["BGP routing table entry for %s" % prefix]
        lines += [entry.render() for entry in entries]
        return "\n".join(lines)


class LookingGlassDirectory:
    """The set of ASes that operate a public looking glass."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._glasses: Dict[int, LookingGlass] = {}

    def register(self, asn: int, router: Router) -> LookingGlass:
        glass = LookingGlass(asn, router, self._topology)
        self._glasses[asn] = glass
        return glass

    def glass(self, asn: int) -> LookingGlass:
        try:
            return self._glasses[asn]
        except KeyError:
            raise AnalysisError(
                "AS %d does not operate a looking glass" % asn
            ) from None

    def __contains__(self, asn: int) -> bool:
        return asn in self._glasses

    def asns(self) -> List[int]:
        return sorted(self._glasses)

    @classmethod
    def from_engine(
        cls, engine: PropagationEngine, asns: List[int]
    ) -> "LookingGlassDirectory":
        """Register looking glasses for the given ASes over an engine's
        live routers."""
        directory = cls(engine.topology)
        for asn in asns:
            directory.register(asn, engine.router(asn))
        return directory
