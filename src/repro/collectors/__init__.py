"""Public BGP collector substrate (RouteViews / RIPE RIS analogue).

- :mod:`repro.collectors.collector` — collectors with weighted peer
  sessions, ingesting the engine's update log;
- :mod:`repro.collectors.rib` — converged RIB snapshots over the studied
  prefix set (Table 4, Figure 5 inputs);
- :mod:`repro.collectors.churn` — the Figure 3 update-churn timeline.
"""

from .collector import Collector, CollectorUpdate
from .rib import CollectorRIB, RIBEntry, build_collector_rib
from .churn import ChurnPhase, ChurnReport, build_churn_report
from .looking_glass import LookingGlass, LookingGlassDirectory

__all__ = [
    "Collector",
    "CollectorUpdate",
    "CollectorRIB",
    "RIBEntry",
    "build_collector_rib",
    "ChurnPhase",
    "ChurnReport",
    "build_churn_report",
    "LookingGlass",
    "LookingGlassDirectory",
]
