"""Collectors with weighted peer sessions.

A feeder AS may peer with the collector system from several routers
(RouteViews and RIS each see hundreds of sessions); ``sessions[asn]``
weights how many update streams a best-route change at that AS
produces, which is what the paper counts in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..bgp.engine import UpdateEvent
from ..netutil import Prefix
from ..obs import get_logger, get_registry

_log = get_logger("repro.collector")


@dataclass(frozen=True)
class CollectorUpdate:
    """One update message as recorded by the collector."""

    time: float
    feeder_asn: int
    sessions: int               # simultaneous sessions carrying it
    prefix: Prefix
    origin_asn: Optional[int]   # None: withdraw
    tag: str
    path: Tuple[int, ...]


class Collector:
    """A RouteViews/RIS-style collector."""

    def __init__(self, name: str, sessions: Dict[int, int]) -> None:
        self.name = name
        self.sessions = dict(sessions)
        self.updates: List[CollectorUpdate] = []

    def ingest(self, update_log: Iterable[UpdateEvent]) -> int:
        """Convert engine best-change events from feeder ASes into
        collector updates; returns how many were recorded."""
        added = 0
        consumed = 0
        for event in update_log:
            consumed += 1
            weight = self.sessions.get(event.asn)
            if not weight:
                continue
            if event.session_weight is not None:
                weight = min(weight, event.session_weight)
            route = event.route
            self.updates.append(
                CollectorUpdate(
                    time=event.time,
                    feeder_asn=event.asn,
                    sessions=weight,
                    prefix=event.prefix,
                    origin_asn=route.origin_asn if route else None,
                    tag=route.tag if route else "",
                    path=route.path.asns if route else (),
                )
            )
            added += 1
        self.updates.sort(key=lambda u: u.time)
        registry = get_registry()
        registry.counter("collector.events_consumed").inc(consumed)
        registry.counter("collector.updates_recorded").inc(added)
        if _log.is_enabled_for("debug"):
            _log.debug(
                "ingested update log",
                collector=self.name,
                events=consumed,
                recorded=added,
            )
        return added

    def message_count(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
        tag: Optional[str] = None,
    ) -> int:
        """Session-weighted update count in a window (what Figure 3's
        cumulative axis shows)."""
        total = 0
        for update in self.updates:
            if start is not None and update.time < start:
                continue
            if end is not None and update.time >= end:
                continue
            if tag is not None and update.tag != tag:
                continue
            total += update.sessions
        return total

    def origins_seen(
        self,
        feeder_asn: int,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[int]:
        """Distinct origin ASes this feeder reported in the window."""
        origins = {
            update.origin_asn
            for update in self.updates
            if update.feeder_asn == feeder_asn
            and update.origin_asn is not None
            and (start is None or update.time >= start)
            and (end is None or update.time < end)
        }
        return sorted(origins)
