"""Figure 3: measurement-prefix BGP churn across the experiment.

The paper plots cumulative update counts observed by all RouteViews and
RIPE RIS peers, split into the R&E-prepends phase (sparse — few public
peers see the R&E route) and the commodity-prepends phase (heavy —
every full-feed peer sees each commodity path change), and notes that
activity settled at least ~50 minutes before each probing window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..experiment.records import ExperimentResult
from .collector import Collector


@dataclass
class ChurnPhase:
    """One phase of the experiment timeline."""

    label: str
    start: float
    end: float
    updates: int = 0
    commodity_tagged: int = 0


@dataclass
class ChurnReport:
    """The Figure 3 reproduction."""

    re_phase: ChurnPhase
    commodity_phase: ChurnPhase
    series: List[Tuple[float, int]] = field(default_factory=list)
    quiet_minutes_before_rounds: List[float] = field(default_factory=list)

    @property
    def min_quiet_minutes(self) -> Optional[float]:
        if not self.quiet_minutes_before_rounds:
            return None
        return min(self.quiet_minutes_before_rounds)

    def summary_rows(self) -> List[str]:
        rows = [
            "R&E prepends phase: %d updates (%d on commodity routes)"
            % (self.re_phase.updates, self.re_phase.commodity_tagged),
            "commodity prepends phase: %d updates"
            % self.commodity_phase.updates,
        ]
        if self.min_quiet_minutes is not None:
            rows.append(
                "quietest pre-probing gap: %.0f minutes"
                % self.min_quiet_minutes
            )
        return rows


def build_churn_report(
    result: ExperimentResult,
    collector: Collector,
    bin_seconds: float = 60.0,
) -> ChurnReport:
    """Build the churn timeline for one experiment from a collector
    that already ingested the experiment's update log."""
    start = (
        result.config_change_times[0][0]
        if result.config_change_times
        else 0.0
    )
    boundary = result.commodity_phase_start()
    end = result.round_times[-1][1] if result.round_times else start
    if boundary is None:
        boundary = end

    re_phase = ChurnPhase("R&E prepends", start, boundary)
    commodity_phase = ChurnPhase("commodity prepends", boundary, end)
    re_phase.updates = collector.message_count(start, boundary)
    re_phase.commodity_tagged = collector.message_count(
        start, boundary, tag="commodity"
    )
    commodity_phase.updates = collector.message_count(boundary, end)

    report = ChurnReport(re_phase=re_phase, commodity_phase=commodity_phase)

    # Cumulative series for plotting.
    cumulative = 0
    t = start
    while t < end:
        cumulative += collector.message_count(t, t + bin_seconds)
        report.series.append((t + bin_seconds, cumulative))
        t += bin_seconds

    # Quiet time before each probing window (the paper saw >= ~50 min).
    update_times = sorted(
        update.time for update in collector.updates
    )
    for window_start, _ in result.round_times:
        last_before = None
        for when in update_times:
            if when >= window_start:
                break
            last_before = when
        if last_before is not None:
            report.quiet_minutes_before_rounds.append(
                (window_start - last_before) / 60.0
            )
    return report
