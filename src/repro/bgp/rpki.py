"""RPKI route origin validation and IRR route objects.

§3.3: the measurement announcements "were covered by RPKI ROAs and IRR
route objects" — without them, origin-validating networks would have
dropped the announcements and biased the measurement.  §2.3 discusses
the data-plane ROV measurements this machinery enables.

The module provides ROA/IRR registries, RFC 6811 validation states,
and an import filter the propagation engines consult for ASes that
enforce ROV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional

from ..errors import PolicyError
from ..netutil import Prefix


class ValidationState(Enum):
    """RFC 6811 route origin validation states."""

    VALID = "valid"
    INVALID = "invalid"
    NOT_FOUND = "not-found"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ROA:
    """A Route Origin Authorization."""

    prefix: Prefix
    origin_asn: int
    max_length: Optional[int] = None

    def __post_init__(self) -> None:
        max_length = self.effective_max_length
        if max_length < self.prefix.length or max_length > 32:
            raise PolicyError(
                "ROA max length %d invalid for %s"
                % (max_length, self.prefix)
            )

    @property
    def effective_max_length(self) -> int:
        return (
            self.max_length
            if self.max_length is not None
            else self.prefix.length
        )

    def covers(self, prefix: Prefix) -> bool:
        return (
            self.prefix.covers(prefix)
            and prefix.length <= self.effective_max_length
        )


@dataclass(frozen=True)
class IRRRouteObject:
    """An IRR ``route:`` object (documented, not validated, intent)."""

    prefix: Prefix
    origin_asn: int
    source: str = "RADB"


class ROATable:
    """Validated ROA payloads, queried at import time."""

    def __init__(self, roas: Iterable[ROA] = ()) -> None:
        self._roas: List[ROA] = []
        for roa in roas:
            self.add(roa)

    def add(self, roa: ROA) -> None:
        self._roas.append(roa)

    def __len__(self) -> int:
        return len(self._roas)

    def covering(self, prefix: Prefix) -> List[ROA]:
        return [roa for roa in self._roas if roa.covers(prefix)]

    def validate(self, prefix: Prefix, origin_asn: int) -> ValidationState:
        """RFC 6811: VALID if any covering ROA authorises the origin;
        INVALID if covering ROAs exist but none match; NOT_FOUND
        otherwise."""
        covering = self.covering(prefix)
        if not covering:
            return ValidationState.NOT_FOUND
        for roa in covering:
            if roa.origin_asn == origin_asn:
                return ValidationState.VALID
        return ValidationState.INVALID


class IRRRegistry:
    """IRR route objects by prefix."""

    def __init__(self, objects: Iterable[IRRRouteObject] = ()) -> None:
        self._objects: Dict[Prefix, List[IRRRouteObject]] = {}
        for obj in objects:
            self.add(obj)

    def add(self, obj: IRRRouteObject) -> None:
        self._objects.setdefault(obj.prefix, []).append(obj)

    def objects_for(self, prefix: Prefix) -> List[IRRRouteObject]:
        return list(self._objects.get(prefix, ()))

    def documents(self, prefix: Prefix, origin_asn: int) -> bool:
        return any(
            obj.origin_asn == origin_asn
            for obj in self.objects_for(prefix)
        )

    def __len__(self) -> int:
        return sum(len(v) for v in self._objects.values())


@dataclass
class MeasurementRegistrations:
    """The paper's registrations: ROAs and IRR objects for every origin
    the measurement prefix is announced with (§3.3)."""

    roa_table: ROATable = field(default_factory=ROATable)
    irr: IRRRegistry = field(default_factory=IRRRegistry)

    @classmethod
    def for_ecosystem(cls, ecosystem) -> "MeasurementRegistrations":
        registrations = cls()
        prefix = ecosystem.measurement_prefix
        for origin in (
            ecosystem.commodity_origin,
            ecosystem.surf_origin,
            ecosystem.internet2_origin,
        ):
            registrations.roa_table.add(
                ROA(prefix=prefix, origin_asn=origin,
                    max_length=prefix.length)
            )
            registrations.irr.add(
                IRRRouteObject(prefix=prefix, origin_asn=origin)
            )
        return registrations

    def announcement_is_clean(self, prefix: Prefix, origin: int) -> bool:
        """Would this announcement survive ROV *and* match documented
        intent?"""
        return (
            self.roa_table.validate(prefix, origin)
            is ValidationState.VALID
            and self.irr.documents(prefix, origin)
        )


def rov_drops_route(
    roa_table: Optional[ROATable], prefix: Prefix, origin_asn: int
) -> bool:
    """Import-filter predicate for ROV-enforcing ASes: drop INVALID,
    accept VALID and NOT_FOUND (standard deployed policy)."""
    if roa_table is None:
        return False
    return roa_table.validate(prefix, origin_asn) is (
        ValidationState.INVALID
    )
