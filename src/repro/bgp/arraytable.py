"""Array-based RIB and vectorized best-route selection.

The object-based decision process (:mod:`repro.bgp.decision`) filters
lists of :class:`~repro.bgp.attributes.Route` objects step by step —
correct and auditable, but every selection pays ~10 Python-level
callable invocations per candidate plus several list allocations.  At
scale 1.0 (~10K ASes, ~18K prefixes) that object churn dominates the
nine-config sweep's wall time (the ROADMAP's cells/minute lever).

This module keeps the routes in structure-of-arrays form instead:
prefix-major parallel columns of localpref, AS-path length, MED, origin
age and neighbor ASN (plain :mod:`array` columns, numpy-optional), and
resolves each decision step as one masked min pass over a whole prefix
shard rather than per-route object comparisons.

Correctness rests on one identity: every sequential run of the decision
steps is a *lexicographic minimization*.  Step ``k`` keeps the rows
minimizing column ``k`` among the rows that survived steps ``1..k-1``,
so the unique final survivor is exactly ``min(rows)`` under the key
tuple ``(-localpref, path_len, med, installed_at, neighbor)`` (with the
variant-dependent components omitted for ASes that skip those steps).
The encoding must preserve each step's ordering exactly — in particular
an unknown neighbor (``learned_from=None``) encodes as ``+inf``
(:data:`NEIGHBOR_NONE`), matching ``_lowest_neighbor_asn``'s sentinel,
so it *loses* ties instead of beating every real neighbor the way a 0
encoding would.

:class:`~repro.bgp.decision.DecisionProcess` remains the oracle: the
provenance layer always narrates via ``best_verbose`` (raw attribute
values, not encodings), and the differential/property test layer pins
winner *and* per-step survivor equality against it.

Backend selection is threaded through
:func:`use_decision_backend` / :func:`active_decision_backend` so bulk
analyses (fastpath callers deep in the collector pipeline) follow the
run's ``--decision-backend`` flag without every call site growing a
parameter.
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import PolicyError
from .attributes import Route
from .decision import Step

try:  # numpy accelerates the batch path but is never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in numpy-free CI
    _np = None

__all__ = [
    "DECISION_BACKENDS",
    "NEIGHBOR_NONE",
    "ArrayRibGroup",
    "ArrayRouteTable",
    "GroupSelection",
    "active_decision_backend",
    "encode_neighbor",
    "key_encoder",
    "use_decision_backend",
    "validate_backend",
]

DECISION_BACKENDS = ("object", "array")

#: Encoding of ``learned_from=None`` in the neighbor column.  ``+inf``
#: mirrors ``decision._lowest_neighbor_asn``: a route without a
#: neighbor to compare loses the final tie-break to any route with a
#: real neighbor ASN (0 would silently *win* every tie instead).
NEIGHBOR_NONE = float("inf")


def _active_numpy():
    """numpy, unless absent or disabled via ``REPRO_PURE_ARRAY=1``
    (tests force the pure-python path through either knob)."""
    if os.environ.get("REPRO_PURE_ARRAY"):
        return None
    return _np


# ---------------------------------------------------------------------
# Backend context


_ACTIVE_BACKEND = "object"


def validate_backend(name: str) -> str:
    if name not in DECISION_BACKENDS:
        raise PolicyError(
            "unknown decision backend %r (choose from %s)"
            % (name, "/".join(DECISION_BACKENDS))
        )
    return name


def active_decision_backend() -> str:
    """The backend new routers/fastpath calls default to."""
    return _ACTIVE_BACKEND


@contextmanager
def use_decision_backend(name: str) -> Iterator[str]:
    """Make *name* the default decision backend inside the block.

    Both backends produce byte-identical results (that is the whole
    contract), so this only chooses the selection *implementation*;
    nesting restores the previous backend on exit.
    """
    global _ACTIVE_BACKEND
    previous = _ACTIVE_BACKEND
    _ACTIVE_BACKEND = validate_backend(name)
    try:
        yield name
    finally:
        _ACTIVE_BACKEND = previous


# ---------------------------------------------------------------------
# Key encoding


def encode_neighbor(learned_from: Optional[int]) -> float:
    return NEIGHBOR_NONE if learned_from is None else learned_from


#: Per-step column extractors, ordered so that the per-step minimum is
#: the step's winner (localpref is negated; see decision.py).
_STEP_ENCODERS: Dict[Step, Callable[[Route], float]] = {
    Step.HIGHEST_LOCALPREF: lambda r: -r.localpref,
    Step.SHORTEST_AS_PATH: lambda r: len(r.path.asns),
    Step.LOWEST_MED: lambda r: r.med,
    Step.OLDEST_ROUTE: lambda r: r.installed_at,
    Step.LOWEST_NEIGHBOR_ASN: lambda r: encode_neighbor(r.learned_from),
}

_ENCODER_CACHE: Dict[Tuple[Step, ...], Callable[[Route], tuple]] = {}


def key_encoder(steps: Sequence[Step]) -> Callable[[Route], tuple]:
    """A ``Route -> key tuple`` encoder for one decision process.

    ``min()`` over the produced tuples equals running *steps* in
    order: each tuple component preserves the corresponding step's
    ordering, so lexicographic comparison *is* the sequential
    tie-break.  Encoders are cached per step signature (there are only
    four variants; see ``DecisionProcess.standard``).
    """
    signature = tuple(steps)
    encoder = _ENCODER_CACHE.get(signature)
    if encoder is None:
        extractors = tuple(_STEP_ENCODERS[step] for step in signature)
        def encoder(route: Route, _extractors=extractors) -> tuple:
            return tuple(extract(route) for extract in _extractors)
        _ENCODER_CACHE[signature] = encoder
    return encoder


def _tied_routes_error(routes: Sequence[Route]) -> PolicyError:
    # Same failure mode as DecisionProcess.best: two distinct routes
    # from the same RIB surviving every step is an ill-formed table.
    return PolicyError(
        "decision process did not yield a unique best route: %s"
        % ("; ".join(str(route) for route in routes),)
    )


# ---------------------------------------------------------------------
# Incremental per-prefix group (the engine/fastpath hot path)


class ArrayRibGroup:
    """One prefix's adj-RIB-in, mirrored as a decision-key column.

    The engine and fastpath mutate one (prefix, neighbor) entry at a
    time and reselect immediately; rebuilding a batch table per
    selection would cost more than the object path saves.  This group
    instead keeps a per-row *precomputed* key tuple maintained on
    mutation, so :meth:`best` is two C-level passes (``min`` + tie
    check) instead of ~10 Python calls per candidate per selection.
    """

    __slots__ = ("_encode", "_index", "_keys", "_nbrs", "_routes")

    def __init__(self, steps: Sequence[Step]) -> None:
        self._encode = key_encoder(steps)
        self._index: Dict[int, int] = {}   # neighbor key -> row
        self._keys: List[tuple] = []
        self._routes: List[Route] = []
        self._nbrs: List[int] = []

    def __len__(self) -> int:
        return len(self._keys)

    def set(self, neighbor_key: int, route: Route) -> None:
        """Install/replace the row for *neighbor_key* (-1 = local)."""
        row = self._index.get(neighbor_key)
        key = self._encode(route)
        if row is None:
            self._index[neighbor_key] = len(self._keys)
            self._keys.append(key)
            self._routes.append(route)
            self._nbrs.append(neighbor_key)
        else:
            self._keys[row] = key
            self._routes[row] = route

    def remove(self, neighbor_key: int) -> None:
        """Drop the row for *neighbor_key* (no-op when absent)."""
        row = self._index.pop(neighbor_key, None)
        if row is None:
            return
        last = len(self._keys) - 1
        if row != last:
            self._keys[row] = self._keys[last]
            self._routes[row] = self._routes[last]
            self._nbrs[row] = self._nbrs[last]
            self._index[self._nbrs[row]] = row
        del self._keys[last]
        del self._routes[last]
        del self._nbrs[last]

    def neighbors(self) -> List[int]:
        """Sorted neighbor keys currently holding a row — the
        mirror-audit hook (must equal ``sorted(adj_rib_in[prefix])``)."""
        return sorted(self._index)

    def audit(self) -> List[str]:
        """Internal-consistency problems (empty when healthy).

        The index must be the exact inverse of the row lists: same
        size, every mapping pointing at a row that holds its neighbor
        key, no orphan rows left behind by swap-remove."""
        problems: List[str] = []
        if not (len(self._keys) == len(self._routes) == len(self._nbrs)):
            problems.append(
                "row lists disagree: %d keys / %d routes / %d neighbors"
                % (len(self._keys), len(self._routes), len(self._nbrs))
            )
        if len(self._index) != len(self._nbrs):
            problems.append(
                "index holds %d entries for %d rows"
                % (len(self._index), len(self._nbrs))
            )
        for neighbor, row in sorted(self._index.items()):
            if row >= len(self._nbrs) or self._nbrs[row] != neighbor:
                problems.append(
                    "index maps neighbor %d to row %d holding %r"
                    % (
                        neighbor,
                        row,
                        self._nbrs[row] if row < len(self._nbrs) else None,
                    )
                )
        return problems

    def state(self) -> tuple:
        """Canonical (neighbor, key) rows sorted by neighbor — equal
        for any mutation history reaching the same RIB contents."""
        return tuple(
            (neighbor, self._keys[row])
            for neighbor, row in sorted(self._index.items())
        )

    def best(self) -> Optional[Route]:
        """The unique decision-process winner, or None when empty.

        Raises :class:`PolicyError` exactly when the oracle would: two
        rows carrying the same full key are two routes that survive
        every step together.
        """
        keys = self._keys
        if not keys:
            return None
        if len(keys) == 1:
            return self._routes[0]
        smallest = min(keys)
        if keys.count(smallest) > 1:
            raise _tied_routes_error(
                [r for k, r in zip(keys, self._routes) if k == smallest]
            )
        return self._routes[keys.index(smallest)]


# ---------------------------------------------------------------------
# Batch structure-of-arrays table


@dataclass
class GroupSelection:
    """One group's narrated selection (mirrors ``best_verbose``)."""

    key: Any
    winner: Route
    winner_index: int            # index into the group's routes
    winning_step: Optional[str]  # step value that reached uniqueness
    steps: List[dict]            # {"step", "entering", "survivors"}


class ArrayRouteTable:
    """A prefix-major structure-of-arrays RIB for bulk selection.

    Columns are parallel ``array('d')`` buffers (float64 is exact for
    every attribute in range: localpref <= 1e6, ASNs < 2^32, MEDs and
    path lengths are small ints); ``_starts`` holds each group's row
    offset.  :meth:`select_best` resolves whole shards at once — with
    numpy, each decision step is one masked ``minimum.reduceat`` pass
    over every group simultaneously; without it, each group collapses
    to one C-level ``min`` over zipped key tuples.
    """

    _COLUMN_ORDER = (
        Step.HIGHEST_LOCALPREF,
        Step.SHORTEST_AS_PATH,
        Step.LOWEST_MED,
        Step.OLDEST_ROUTE,
        Step.LOWEST_NEIGHBOR_ASN,
    )

    def __init__(self) -> None:
        self._columns: Dict[Step, array] = {
            step: array("d") for step in self._COLUMN_ORDER
        }
        self._route_ids = array("q")      # row -> caller route id
        self._starts = array("q", [0])    # group row offsets + sentinel
        self._group_keys: List[Any] = []
        self._group_steps: List[Tuple[Step, ...]] = []
        self._routes: List[Route] = []

    def __len__(self) -> int:
        return len(self._group_keys)

    @property
    def rows(self) -> int:
        return len(self._routes)

    def add_group(
        self,
        key: Any,
        routes: Sequence[Route],
        steps: Sequence[Step],
    ) -> None:
        """Append one prefix group (its candidate routes plus the
        owning AS's decision-step signature)."""
        routes = list(routes)
        if not routes:
            raise PolicyError("cannot add an empty group to ArrayRouteTable")
        columns = self._columns
        for step in self._COLUMN_ORDER:
            encode = _STEP_ENCODERS[step]
            columns[step].extend(encode(route) for route in routes)
        base = len(self._routes)
        self._route_ids.extend(range(base, base + len(routes)))
        self._routes.extend(routes)
        self._group_keys.append(key)
        self._group_steps.append(tuple(steps))
        self._starts.append(len(self._routes))

    def group_routes(self, group: int) -> List[Route]:
        start, end = self._starts[group], self._starts[group + 1]
        return self._routes[start:end]

    # -- selection -----------------------------------------------------

    def select_best(self) -> List[Route]:
        """Every group's winner, in group insertion order.

        Equals ``[process.best(group) for group in groups]`` by the
        lexicographic identity (see module docstring); raises
        :class:`PolicyError` when any group ends with a tie, as the
        oracle does.
        """
        np = _active_numpy()
        if np is not None and len(self._group_keys) > 1:
            return self._select_best_numpy(np)
        return self._select_best_pure()

    def _select_best_pure(self) -> List[Route]:
        winners: List[Route] = []
        starts = self._starts
        columns = self._columns
        routes = self._routes
        for group, signature in enumerate(self._group_steps):
            start, end = starts[group], starts[group + 1]
            if end - start == 1:
                winners.append(routes[start])
                continue
            keys = list(zip(
                *(columns[step][start:end] for step in signature)
            ))
            smallest = min(keys)
            if keys.count(smallest) > 1:
                raise _tied_routes_error([
                    routes[start + i]
                    for i, k in enumerate(keys) if k == smallest
                ])
            winners.append(routes[start + keys.index(smallest)])
        return winners

    def _select_best_numpy(self, np) -> List[Route]:
        n_rows = len(self._routes)
        n_groups = len(self._group_keys)
        starts = np.frombuffer(self._starts, dtype=np.int64)[:-1]
        counts = np.diff(np.frombuffer(self._starts, dtype=np.int64))
        group_of_row = np.repeat(np.arange(n_groups), counts)
        surviving = np.ones(n_rows, dtype=bool)
        group_has = {
            step: np.fromiter(
                (step in sig for sig in self._group_steps),
                dtype=bool, count=n_groups,
            )
            for step in self._COLUMN_ORDER
        }
        for step in self._COLUMN_ORDER:
            has = group_has[step]
            if not has.any():
                continue
            column = np.frombuffer(self._columns[step], dtype=np.float64)
            masked = np.where(surviving, column, np.inf)
            group_min = np.minimum.reduceat(masked, starts)
            narrowed = surviving & (masked == group_min[group_of_row])
            # Groups whose process skips this step keep their
            # survivors untouched (the masked pass is a no-op there).
            surviving = np.where(has[group_of_row], narrowed, surviving)
        survivor_counts = np.add.reduceat(
            surviving.astype(np.int64), starts
        )
        if (survivor_counts > 1).any():
            group = int(np.argmax(survivor_counts > 1))
            start, end = self._starts[group], self._starts[group + 1]
            tied = [
                self._routes[row]
                for row in range(start, end) if surviving[row]
            ]
            raise _tied_routes_error(tied)
        # One survivor per group, so the sorted survivor row indices
        # are already in group order.
        winner_rows = np.flatnonzero(surviving)
        routes = self._routes
        return [routes[int(row)] for row in winner_rows]

    def select_best_verbose(self) -> List[GroupSelection]:
        """Narrated selection: per-group winner, winning step, and the
        surviving candidate indices at every step boundary.

        This is the differential-test view of the vectorized path —
        the masked min passes run step by step (pure python, no fused
        key) so survivor sets can be compared against
        ``DecisionProcess.best_verbose`` boundary for boundary.  The
        loop mirrors the oracle exactly: stop as soon as one candidate
        survives, record only executed steps.
        """
        out: List[GroupSelection] = []
        starts = self._starts
        columns = self._columns
        for group, signature in enumerate(self._group_steps):
            start, end = starts[group], starts[group + 1]
            surviving = list(range(end - start))
            steps_out: List[dict] = []
            for step in signature:
                if len(surviving) == 1:
                    break
                column = columns[step]
                smallest = min(column[start + i] for i in surviving)
                narrowed = [
                    i for i in surviving
                    if column[start + i] == smallest
                ]
                steps_out.append({
                    "step": step.value,
                    "entering": surviving,
                    "survivors": narrowed,
                })
                surviving = narrowed
            if len(surviving) > 1:
                raise _tied_routes_error(
                    [self._routes[start + i] for i in surviving]
                )
            winner_index = surviving[0]
            out.append(GroupSelection(
                key=self._group_keys[group],
                winner=self._routes[start + winner_index],
                winner_index=winner_index,
                winning_step=(
                    steps_out[-1]["step"] if steps_out else None
                ),
                steps=steps_out,
            ))
        return out
