"""Synchronous bulk route propagation.

``propagate_fastpath`` computes the converged loc-RIB entry of every AS
for one prefix (possibly announced by several origins, as with the
measurement prefix) without simulating message timing.  It is used for
the bulk collector-view analyses (Table 4, Figure 5) where churn and
route age are irrelevant, and as an oracle in tests: at fixpoint the
event-driven engine and the fastpath must agree whenever no AS uses the
route-age tie-break.

The relaxation is a policy-aware Bellman-Ford: ASes whose best route
changed re-export to eligible neighbors until quiescence.  Under
valley-free (Gao-Rexford + R&E fabric) export and monotone preferences
this converges to the unique stable solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..errors import EngineError
from ..netutil import Prefix
from ..obs import get_logger, get_registry, span
from ..obs.frontier import FastpathRunFrontier, active_frontier
from ..obs.provenance import active_recorder, selection_event
from ..topology.graph import Topology
from .arraytable import ArrayRibGroup, active_decision_backend, validate_backend
from .attributes import Announcement, ASPath, Route
from .policy import may_export
from .router import LOCAL_ROUTE_LOCALPREF
from .rpki import rov_drops_route

_MAX_ROUNDS_FACTOR = 40

_log = get_logger("repro.fastpath")


@dataclass
class FastpathResult:
    """Converged state for one prefix.

    ``best`` maps ASN to its selected route (origin ASes hold their
    local route).  ``offers`` maps ASN to the post-import routes each
    neighbor last offered it (an adj-RIB-in snapshot), which analyses
    use to see alternatives (e.g. the R&E route an AS did *not* pick).
    """

    prefix: Prefix
    best: Dict[int, Route] = field(default_factory=dict)
    offers: Dict[int, Dict[int, Route]] = field(default_factory=dict)

    def route_at(self, asn: int) -> Optional[Route]:
        return self.best.get(asn)

    def candidates_at(self, asn: int) -> List[Route]:
        rib = self.offers.get(asn, {})
        return [rib[key] for key in sorted(rib)]


def propagate_fastpath(
    topology: Topology,
    announcements: Iterable[Announcement],
    prefix: Optional[Prefix] = None,
    roa_table=None,
    decision_backend: Optional[str] = None,
    down_links: Optional[Iterable[frozenset]] = None,
) -> FastpathResult:
    """Compute every AS's converged best route for one prefix.

    All *announcements* must share a prefix (pass *prefix* to check).
    *decision_backend* picks the selection implementation ("object" or
    "array"; see :mod:`repro.bgp.arraytable`) and defaults to the
    active ``use_decision_backend`` context; both produce identical
    results.  *down_links* (an iterable of two-ASN frozensets, matching
    the engine's failed-link set) excludes those adjacencies from
    propagation, so the fastpath can oracle the engine's post-flap
    state too.
    """
    announcements = list(announcements)
    if not announcements:
        raise EngineError("no announcements to propagate")
    the_prefix = announcements[0].prefix
    if prefix is not None and prefix != the_prefix:
        raise EngineError("prefix mismatch in fastpath call")
    for announcement in announcements:
        if announcement.prefix != the_prefix:
            raise EngineError("announcements for different prefixes")

    backend = validate_backend(
        decision_backend
        if decision_backend is not None
        else active_decision_backend()
    )
    failed: Set[frozenset] = set(down_links or ())
    result = FastpathResult(prefix=the_prefix)
    processes = {}
    # Array backend: per-receiver decision-key mirrors of the offers
    # RIB, updated alongside each mutation in _deliver (None = object
    # backend, select through the oracle).
    groups: Optional[Dict[int, ArrayRibGroup]] = (
        {} if backend == "array" else None
    )
    # Decision-process cache accounting: [hits, misses], mutated by
    # _deliver (a list keeps the hot path to one index increment).
    cache_stats = [0, 0]
    # Best-route selections performed, for the per-backend
    # fastpath.selections_* counter.
    selections = [0]
    compactions = 0
    pending: List[int] = []
    pending_set: Set[int] = set()

    def enqueue(asn: int) -> None:
        if asn not in pending_set:
            pending_set.add(asn)
            pending.append(asn)

    # Seed: origins install their local route and push first-hop offers.
    # One origin may hold several announcements of the prefix with
    # different tags (a multi-homed host announcing through separate
    # interfaces, Figure 6); export resolves which applies per neighbor
    # via the origin's tag-scoped export policy.
    origin_announcements: Dict[int, List[Announcement]] = {}
    for announcement in announcements:
        origin = announcement.origin_asn
        origin_announcements.setdefault(origin, []).append(announcement)
        result.best[origin] = Route(
            prefix=the_prefix,
            path=ASPath((origin,)),
            learned_from=None,
            localpref=LOCAL_ROUTE_LOCALPREF,
            tag=announcement.tag,
        )
        enqueue(origin)

    max_rounds = max(1, len(topology)) * _MAX_ROUNDS_FACTOR
    iterations = 0
    cursor = 0
    # One call returning None per propagation is the entire
    # disabled-state frontier cost; the run id derives from the trace's
    # recorded-event count, which the byte-identity contract keeps
    # equal across execution modes.
    trace_ring = active_frontier()
    acc = None
    if trace_ring is not None:
        acc = FastpathRunFrontier(
            trace_ring, trace_ring.total_recorded, the_prefix
        )
    with span("fastpath.propagate"):
        while cursor < len(pending):
            asn = pending[cursor]
            cursor += 1
            pending_set.discard(asn)
            iterations += 1
            if iterations > max_rounds + len(pending):
                raise EngineError("fastpath failed to converge")
            best = result.best.get(asn)
            for neighbor in sorted(topology.neighbors(asn)):
                if failed and frozenset((asn, neighbor)) in failed:
                    continue
                offered = _exported_route(
                    topology, asn, neighbor, best,
                    origin_announcements.get(asn),
                )
                changed = _deliver(
                    topology, result, processes, asn, neighbor, offered,
                    roa_table, cache_stats, groups, selections,
                )
                if changed:
                    enqueue(neighbor)
                if acc is not None:
                    acc.note(
                        neighbor if changed else None,
                        len(pending) - cursor,
                    )
            if cursor > len(topology) * _MAX_ROUNDS_FACTOR:
                # Compact the queue so memory stays bounded on big runs.
                pending = pending[cursor:]
                cursor = 0
                compactions += 1

    if acc is not None:
        acc.finish()
    registry = get_registry()
    registry.counter("fastpath.prefixes_computed").inc()
    registry.counter("fastpath.iterations").inc(iterations)
    registry.counter("fastpath.decision_cache_hits").inc(cache_stats[0])
    registry.counter("fastpath.decision_cache_misses").inc(cache_stats[1])
    registry.counter("fastpath.queue_compactions").inc(compactions)
    registry.counter(
        "fastpath.selections_%s" % backend
    ).inc(selections[0])
    registry.gauge("fastpath.ases_with_route").set(len(result.best))
    if _log.is_enabled_for("debug"):
        _log.debug(
            "fastpath converged",
            prefix=str(the_prefix),
            iterations=iterations,
            ases_with_route=len(result.best),
            cache_hits=cache_stats[0],
            cache_misses=cache_stats[1],
        )
    return result


def _exported_route(
    topology: Topology,
    sender: int,
    receiver: int,
    best: Optional[Route],
    announcements: Optional[List[Announcement]],
) -> Optional[Route]:
    """The route *sender* offers *receiver*, or None (no export)."""
    if best is None:
        return None
    policy = topology.node(sender).policy
    to_rel = topology.rel(sender, receiver)
    if best.learned_from is None:
        # Locally originated: pick the announcement exportable to this
        # neighbor (tag-scoped filters may dedicate announcements to
        # interfaces, as on the Figure 6 host).
        candidates = announcements or [
            Announcement(prefix=best.prefix, origin_asn=sender,
                         tag=best.tag)
        ]
        chosen = None
        for announcement in candidates:
            if not policy.blocks_export(receiver, announcement.tag):
                chosen = announcement
                break
        if chosen is None:
            return None
        extra = policy.prepends_toward(receiver)
        extra += chosen.prepends_toward(receiver)
        path = ASPath.origin_path(sender, extra)
        return Route(
            prefix=best.prefix,
            path=path,
            learned_from=sender,
            localpref=0,  # receiver assigns on import
            tag=chosen.tag,
        )
    if policy.blocks_export(receiver, best.tag):
        return None
    learned_rel = topology.rel(sender, best.learned_from)
    if not may_export(
        learned_rel,
        to_rel,
        learned_fabric=topology.is_fabric(sender, best.learned_from),
        to_fabric=topology.is_fabric(sender, receiver),
    ):
        return None
    if best.path.contains(receiver):
        return None
    prepends = 1 + policy.prepends_toward(receiver)
    return Route(
        prefix=best.prefix,
        path=best.path.prepended_by(sender, prepends),
        learned_from=sender,
        localpref=0,
        tag=best.tag,
    )


def _deliver(
    topology: Topology,
    result: FastpathResult,
    processes: Dict[int, object],
    sender: int,
    receiver: int,
    offered: Optional[Route],
    roa_table=None,
    cache_stats: Optional[List[int]] = None,
    groups: Optional[Dict[int, "ArrayRibGroup"]] = None,
    selections: Optional[List[int]] = None,
) -> bool:
    """Install *offered* (or its absence) at *receiver*; return True if
    the receiver's best route changed."""
    rib = result.offers.setdefault(receiver, {})
    node = topology.node(receiver)
    if (
        offered is not None
        and node.policy.enforce_rov
        and rov_drops_route(roa_table, offered.prefix,
                            offered.path.origin)
    ):
        offered = None  # RPKI-invalid: rejected on import (§2.3)
    if offered is None or offered.path.contains(receiver):
        if sender not in rib:
            return False
        del rib[sender]
        installed = None
    else:
        localpref = node.policy.localpref_for(
            sender, topology.rel(receiver, sender)
        )
        imported = Route(
            prefix=offered.prefix,
            path=offered.path,
            learned_from=sender,
            localpref=localpref,
            tag=offered.tag,
        )
        previous = rib.get(sender)
        if previous == imported:
            return False
        rib[sender] = imported
        installed = imported

    process = processes.get(receiver)
    if process is None:
        process = node.policy.decision_process()
        processes[receiver] = process
        if cache_stats is not None:
            cache_stats[1] += 1
    elif cache_stats is not None:
        cache_stats[0] += 1
    group = None
    if groups is not None:
        # Mirror the mutation above into the receiver's decision-key
        # column before selecting.  A group is created on the
        # receiver's first mutation, when the rib holds only this
        # entry, so mirror and rib never diverge.
        group = groups.get(receiver)
        if group is None:
            group = ArrayRibGroup(process.steps)
            groups[receiver] = group
        if installed is None:
            group.remove(sender)
        else:
            group.set(sender, installed)
    old = result.best.get(receiver)
    if old is not None and old.learned_from is None:
        # Local routes always win; an origin never changes its best.
        return False
    if selections is not None:
        selections[0] += 1
    recorder = active_recorder()
    if recorder is not None and recorder.wants(result.prefix):
        candidates: List[Route] = [rib[key] for key in sorted(rib)]
        new, steps = process.best_verbose(candidates)
        recorder.record(selection_event(
            source="fastpath",
            asn=receiver,
            prefix=result.prefix,
            candidates=candidates,
            steps=steps,
            winner_index=(
                next(i for i, r in enumerate(candidates) if r is new)
                if new is not None else None
            ),
            winning_step=steps[-1]["step"] if steps else None,
        ))
    elif group is not None:
        new = group.best()
    else:
        new = process.best([rib[key] for key in sorted(rib)])
    if new is None:
        if old is None:
            return False
        del result.best[receiver]
        return True
    if old is not None and old == new:
        return False
    result.best[receiver] = new
    return True
