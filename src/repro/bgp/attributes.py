"""BGP route attributes.

Routes are lightweight immutable values: the propagation engines create
many of them, and immutability lets adj-RIB entries be shared freely
between routers without defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import PolicyError
from ..netutil import Prefix


@dataclass(frozen=True)
class ASPath:
    """An AS path: a sequence of ASNs, origin last.

    Prepending repeats an ASN; ``length`` counts every element (the
    quantity BGP compares), while ``unique_ases`` collapses repeats.
    """

    asns: Tuple[int, ...]

    @classmethod
    def origin_path(cls, origin_asn: int, prepends: int = 0) -> "ASPath":
        """The path as announced by the origin, with *prepends* extra
        copies of the origin ASN (prepends=0 gives ``[origin]``)."""
        if prepends < 0:
            raise PolicyError("prepends must be non-negative")
        return cls((origin_asn,) * (1 + prepends))

    @property
    def length(self) -> int:
        return len(self.asns)

    @property
    def origin(self) -> int:
        if not self.asns:
            raise PolicyError("empty AS path has no origin")
        return self.asns[-1]

    @property
    def first_hop(self) -> int:
        """The most recently added (leftmost) ASN."""
        if not self.asns:
            raise PolicyError("empty AS path has no first hop")
        return self.asns[0]

    @property
    def unique_ases(self) -> Tuple[int, ...]:
        """ASNs with consecutive repeats collapsed, order preserved."""
        out = []
        for asn in self.asns:
            if not out or out[-1] != asn:
                out.append(asn)
        return tuple(out)

    def contains(self, asn: int) -> bool:
        """Loop check: is *asn* anywhere in the path?"""
        return asn in self.asns

    def prepended_by(self, asn: int, count: int = 1) -> "ASPath":
        """Return a new path with *count* copies of *asn* at the front."""
        if count < 1:
            raise PolicyError("prepend count must be >= 1")
        return ASPath((asn,) * count + self.asns)

    def prepends_of_origin(self) -> int:
        """Number of *extra* origin copies at the tail (0 = no
        prepending by the origin)."""
        origin = self.origin
        count = 0
        for asn in reversed(self.asns):
            if asn != origin:
                break
            count += 1
        return count - 1

    def __str__(self) -> str:
        return " ".join(str(asn) for asn in self.asns)


@dataclass(frozen=True)
class Route:
    """A route to *prefix* as held by one AS.

    ``learned_from`` is the neighbor ASN the route was received from
    (``None`` for locally originated routes); it is also the data-plane
    next hop at the AS level.  ``localpref`` is the value the *holding*
    AS assigned on import.  ``installed_at`` is the simulation time the
    route entered the holder's RIB (the "route age" tie-break input;
    smaller = older).  ``tag`` carries the announcement label, e.g.
    ``"re"`` or ``"commodity"`` for the measurement prefix.
    """

    prefix: Prefix
    path: ASPath
    learned_from: Optional[int]
    localpref: int
    med: int = 0
    installed_at: float = 0.0
    tag: str = ""

    @property
    def origin_asn(self) -> int:
        return self.path.origin

    def aged(self, installed_at: float) -> "Route":
        """Copy of the route with a new install timestamp."""
        return Route(
            prefix=self.prefix,
            path=self.path,
            learned_from=self.learned_from,
            localpref=self.localpref,
            med=self.med,
            installed_at=installed_at,
            tag=self.tag,
        )

    def with_localpref(self, localpref: int) -> "Route":
        """Copy of the route with a different localpref."""
        if localpref < 0:
            raise PolicyError("negative localpref %d" % localpref)
        return Route(
            prefix=self.prefix,
            path=self.path,
            learned_from=self.learned_from,
            localpref=localpref,
            med=self.med,
            installed_at=self.installed_at,
            tag=self.tag,
        )

    def __str__(self) -> str:
        return "%s via %s lp=%d path=[%s]%s" % (
            self.prefix,
            self.learned_from if self.learned_from is not None else "local",
            self.localpref,
            self.path,
            (" tag=" + self.tag) if self.tag else "",
        )


@dataclass(frozen=True)
class Announcement:
    """An origin's announcement of a prefix.

    ``prepends`` maps neighbor ASN to the number of *extra* copies of
    the origin ASN exported to that neighbor; neighbors not listed get
    ``default_prepends``.  ``tag`` labels the announcement so analyses
    can tell which origin a propagated route descends from (R&E vs
    commodity measurement announcements).
    """

    prefix: Prefix
    origin_asn: int
    prepends: Dict[int, int] = field(default_factory=dict)
    default_prepends: int = 0
    tag: str = ""

    def prepends_toward(self, neighbor_asn: int) -> int:
        return self.prepends.get(neighbor_asn, self.default_prepends)

    def path_toward(self, neighbor_asn: int) -> ASPath:
        """The AS path as exported to *neighbor_asn*."""
        return ASPath.origin_path(
            self.origin_asn, self.prepends_toward(neighbor_asn)
        )
