"""Per-AS BGP router state.

Each AS is modelled as one router holding an adj-RIB-in (the most recent
route from each neighbor per prefix) and a loc-RIB (the selected best
route per prefix).  Import policy (localpref assignment, loop rejection)
is applied on receive; the decision process then reselects the best
route for the affected prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from ..netutil import Prefix
from ..obs.provenance import active_recorder, selection_event
from .arraytable import ArrayRibGroup, active_decision_backend, validate_backend
from .attributes import ASPath, Route
from .decision import DecisionProcess
from .policy import Rel, RoutingPolicy

LOCAL_ROUTE_LOCALPREF = 1_000_000


@dataclass
class BestChange:
    """The outcome of processing one received update."""

    changed: bool
    old: Optional[Route]
    new: Optional[Route]


class Router:
    """BGP state for a single AS."""

    def __init__(
        self,
        asn: int,
        policy: RoutingPolicy,
        decision_backend: Optional[str] = None,
    ) -> None:
        self.asn = asn
        self.policy = policy
        self.process: DecisionProcess = policy.decision_process()
        # adj_rib_in[prefix][neighbor_asn] -> Route (post-import)
        self.adj_rib_in: Dict[Prefix, Dict[int, Route]] = {}
        self.loc_rib: Dict[Prefix, Route] = {}
        #: Selection backend: "object" filters Route lists through the
        #: oracle; "array" mirrors the adj-RIB-in into per-prefix
        #: decision-key columns (:class:`ArrayRibGroup`) and selects by
        #: lexicographic min — byte-identical results, fewer Python
        #: calls per selection.  None consults the active context.
        self.decision_backend = validate_backend(
            decision_backend
            if decision_backend is not None
            else active_decision_backend()
        )
        self._groups: Optional[Dict[Prefix, ArrayRibGroup]] = (
            {} if self.decision_backend == "array" else None
        )
        #: Best-route selections performed (the engine flushes this
        #: into per-backend ``engine.selections_*`` counters).
        self.selections = 0

    # ----- local origination -------------------------------------------

    def originate(self, prefix: Prefix, tag: str = "", now: float = 0.0) -> Route:
        """Install a locally originated route for *prefix*."""
        route = Route(
            prefix=prefix,
            path=ASPath((self.asn,)),
            learned_from=None,
            localpref=LOCAL_ROUTE_LOCALPREF,
            installed_at=now,
            tag=tag,
        )
        self.adj_rib_in.setdefault(prefix, {})[-1] = route
        if self._groups is not None:
            self._group(prefix).set(-1, route)
        self._reselect(prefix, now=now)
        return route

    def withdraw_local(self, prefix: Prefix) -> BestChange:
        """Remove the locally originated route for *prefix*."""
        rib = self.adj_rib_in.get(prefix, {})
        rib.pop(-1, None)
        if self._groups is not None and prefix in self._groups:
            self._groups[prefix].remove(-1)
        return self._reselect(prefix)

    # ----- receive path --------------------------------------------------

    def receive(
        self,
        neighbor_asn: int,
        rel: Rel,
        prefix: Prefix,
        path: Optional[ASPath],
        now: float,
        med: int = 0,
        tag: str = "",
    ) -> BestChange:
        """Process an update (*path* set) or withdraw (*path* None) from
        *neighbor_asn* and return how the best route changed.

        Routes whose path contains our own ASN are rejected as loops,
        which acts as a withdraw of any previous route from that
        neighbor (standard BGP loop prevention).
        """
        rib = self.adj_rib_in.setdefault(prefix, {})
        if path is None or path.contains(self.asn):
            existing = rib.pop(neighbor_asn, None)
            if existing is None:
                return BestChange(False, self.loc_rib.get(prefix),
                                  self.loc_rib.get(prefix))
            if self._groups is not None and prefix in self._groups:
                self._groups[prefix].remove(neighbor_asn)
            return self._reselect(prefix, now=now)

        localpref = self.policy.localpref_for(neighbor_asn, rel)
        previous = rib.get(neighbor_asn)
        if (
            previous is not None
            and previous.path == path
            and previous.localpref == localpref
            and previous.med == med
            and previous.tag == tag
        ):
            # Duplicate announcement: no attribute change, keep age.
            best = self.loc_rib.get(prefix)
            return BestChange(False, best, best)
        route = Route(
            prefix=prefix,
            path=path,
            learned_from=neighbor_asn,
            localpref=localpref,
            med=med,
            installed_at=now,
            tag=tag,
        )
        rib[neighbor_asn] = route
        if self._groups is not None:
            self._group(prefix).set(neighbor_asn, route)
        return self._reselect(prefix, now=now)

    def reprice_neighbor(
        self, neighbor_asn: int, rel: Rel
    ) -> List[Tuple[Prefix, BestChange]]:
        """Re-apply import localpref to every installed route from
        *neighbor_asn* (after a policy edit) and return the per-prefix
        best changes.  Repricing preserves route age — only the
        localpref attribute is replaced, so the OLDEST_ROUTE tiebreak
        is unaffected."""
        changes: List[Tuple[Prefix, BestChange]] = []
        for prefix, rib in self.adj_rib_in.items():
            route = rib.get(neighbor_asn)
            if route is None:
                continue
            localpref = self.policy.localpref_for(neighbor_asn, rel)
            if route.localpref == localpref:
                continue
            repriced = replace(route, localpref=localpref)
            rib[neighbor_asn] = repriced
            if self._groups is not None:
                self._group(prefix).set(neighbor_asn, repriced)
            change = self._reselect(prefix)
            if change.changed:
                changes.append((prefix, change))
        return changes

    def drop_neighbor(self, neighbor_asn: int) -> List[Tuple[Prefix, BestChange]]:
        """Remove every adj-RIB-in entry from *neighbor_asn* (session
        failure) and return the per-prefix best changes."""
        changes: List[Tuple[Prefix, BestChange]] = []
        for prefix, rib in self.adj_rib_in.items():
            if neighbor_asn in rib:
                del rib[neighbor_asn]
                if self._groups is not None and prefix in self._groups:
                    self._groups[prefix].remove(neighbor_asn)
                change = self._reselect(prefix)
                if change.changed:
                    changes.append((prefix, change))
        return changes

    # ----- queries -------------------------------------------------------

    def best_route(self, prefix: Prefix) -> Optional[Route]:
        return self.loc_rib.get(prefix)

    def candidate_routes(self, prefix: Prefix) -> List[Route]:
        """All usable adj-RIB-in routes for *prefix* (sorted by
        neighbor for determinism)."""
        rib = self.adj_rib_in.get(prefix, {})
        return [rib[key] for key in sorted(rib)]

    def routes_from(self, neighbor_asn: int) -> Iterator[Route]:
        for rib in self.adj_rib_in.values():
            route = rib.get(neighbor_asn)
            if route is not None:
                yield route

    def best_from_neighbors(
        self, prefix: Prefix, neighbor_asns: List[int]
    ) -> Optional[Route]:
        """Best route for *prefix* restricted to the given neighbors —
        models a VRF that only imports from those sessions (used by the
        Table 3 VRF-split collector export)."""
        rib = self.adj_rib_in.get(prefix, {})
        candidates = [
            rib[nbr] for nbr in sorted(set(neighbor_asns)) if nbr in rib
        ]
        return self.process.best(candidates)

    def audit_groups(self) -> List[str]:
        """Cross-check array-backend group mirrors against the
        adj-RIB-in (empty when consistent, or on the object backend).
        Guards the swap-remove bookkeeping: a ghost row that survived a
        withdraw/re-announce cycle shows up here."""
        problems: List[str] = []
        if self._groups is None:
            return problems
        for prefix, group in sorted(self._groups.items()):
            expected = sorted(self.adj_rib_in.get(prefix, {}))
            actual = group.neighbors()
            if expected != actual:
                problems.append(
                    "AS %d %s: group rows %r != adj-RIB-in %r"
                    % (self.asn, prefix, actual, expected)
                )
            problems.extend(
                "AS %d %s: %s" % (self.asn, prefix, issue)
                for issue in group.audit()
            )
        return problems

    # ----- internals ------------------------------------------------------

    def _group(self, prefix: Prefix) -> ArrayRibGroup:
        group = self._groups.get(prefix)
        if group is None:
            group = ArrayRibGroup(self.process.steps)
            self._groups[prefix] = group
        return group

    def _reselect(
        self, prefix: Prefix, now: Optional[float] = None
    ) -> BestChange:
        rib = self.adj_rib_in.get(prefix, {})
        old = self.loc_rib.get(prefix)
        self.selections += 1
        recorder = active_recorder()
        if recorder is not None and recorder.wants(prefix):
            # Provenance always narrates through the oracle — raw
            # attribute values, regardless of backend — so the audit
            # trail is byte-identical under both.
            candidates = [rib[key] for key in sorted(rib)]
            new, steps = self.process.best_verbose(candidates)
            recorder.record(selection_event(
                source="engine",
                asn=self.asn,
                prefix=prefix,
                candidates=candidates,
                steps=steps,
                winner_index=(
                    next(
                        i for i, r in enumerate(candidates) if r is new
                    )
                    if new is not None else None
                ),
                winning_step=steps[-1]["step"] if steps else None,
                time=now,
            ))
        elif self._groups is not None:
            group = self._groups.get(prefix)
            new = group.best() if group is not None else None
        else:
            new = self.process.best([rib[key] for key in sorted(rib)])
        if new is None:
            self.loc_rib.pop(prefix, None)
        else:
            self.loc_rib[prefix] = new
        changed = not _routes_equivalent(old, new)
        return BestChange(changed, old, new)


def _routes_equivalent(a: Optional[Route], b: Optional[Route]) -> bool:
    """Two routes are equivalent for export purposes when their
    announceable attributes match (age differences do not trigger new
    exports)."""
    if a is None or b is None:
        return a is b
    return (
        a.path == b.path
        and a.learned_from == b.learned_from
        and a.med == b.med
        and a.tag == b.tag
    )
