"""Event-driven BGP propagation engine.

The engine delivers UPDATE/WITHDRAW messages between neighboring ASes
with randomised (but deterministic, seeded) per-message delays, FIFO per
session, until the network reaches a fixpoint.  It stamps route ages,
counts per-session messages, and records every loc-RIB best change so
collectors can reconstruct the update streams behind Figure 3.

The engine is exact but message-driven; use :mod:`repro.bgp.fastpath`
for bulk converged-state computation where churn does not matter.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import EngineError
from ..netutil import Prefix
from ..obs import get_logger, get_registry, span
from ..obs.frontier import EngineRunFrontier, active_frontier
from ..rng import SeedTree
from ..topology.graph import Topology
from .arraytable import active_decision_backend
from .attributes import Announcement, ASPath, Route
from .policy import may_export
from .rpki import rov_drops_route
from .router import Router

#: Default per-message propagation delay model (seconds).
BASE_DELAY = 0.05
MEAN_EXTRA_DELAY = 1.5

#: Safety cap: a single convergence run delivering more messages than
#: this indicates a policy dispute wheel (should not happen with
#: Gao-Rexford-compliant policies).
DEFAULT_MESSAGE_LIMIT = 2_000_000

#: Fraction of the message limit at which the engine starts warning
#: that a run is approaching the dispute-wheel cap.
MESSAGE_LIMIT_WARN_RATIO = 0.8

_log = get_logger("repro.engine")


def _route_state(route: Route) -> tuple:
    """Every semantically meaningful Route field, as a plain tuple."""
    return (
        route.path.asns,
        route.learned_from,
        route.localpref,
        route.med,
        route.installed_at,
        route.tag,
    )


@dataclass(frozen=True)
class UpdateEvent:
    """A loc-RIB best change at one AS (what a full-feed collector
    session from that AS would carry).

    ``session_weight`` overrides the collector's per-feeder session
    multiplicity; injected single-session events (background flaps) set
    it to 1."""

    time: float
    asn: int
    prefix: Prefix
    route: Optional[Route]  # None = withdrawn
    session_weight: Optional[int] = None


@dataclass
class ConvergenceStats:
    """Summary of one run_to_fixpoint call."""

    messages_delivered: int = 0
    best_changes: int = 0
    started_at: float = 0.0
    converged_at: float = 0.0
    #: Messages enqueued during this run (deliveries trigger exports).
    messages_sent: int = 0
    #: Messages discarded because their link was down at delivery
    #: time.  Tracked separately from ``messages_delivered`` so outage
    #: churn cannot inflate ``limit_proximity`` or trip the
    #: dispute-wheel cap: only real deliveries count toward the limit.
    messages_dropped: int = 0
    #: Deepest the pending-message heap got during this run.
    peak_heap_depth: int = 0
    #: Wall-clock seconds the run took (simulated time is
    #: ``duration``; this is real compute time).
    wall_seconds: float = 0.0
    #: The engine's message limit when the run executed.
    message_limit: int = 0

    @property
    def duration(self) -> float:
        return max(0.0, self.converged_at - self.started_at)

    def replay_key(self) -> tuple:
        """The run's deterministic fields, as a comparable tuple.

        Everything except ``wall_seconds`` (real compute time, which
        legitimately differs between reruns); two runs of the same
        seeded experiment — serial or sharded, any worker count — must
        produce equal replay keys."""
        return (
            self.messages_delivered,
            self.messages_dropped,
            self.best_changes,
            self.started_at,
            self.converged_at,
            self.messages_sent,
            self.peak_heap_depth,
            self.message_limit,
        )

    @property
    def limit_proximity(self) -> float:
        """How close the run came to the dispute-wheel message cap,
        as a 0..1 ratio (0.0 when no limit applies)."""
        if self.message_limit <= 0:
            return 0.0
        return self.messages_delivered / self.message_limit


@dataclass(order=True)
class _Message:
    deliver_at: float
    seq: int
    sender: int = field(compare=False)
    receiver: int = field(compare=False)
    prefix: Prefix = field(compare=False)
    path: Optional[ASPath] = field(compare=False)
    tag: str = field(compare=False, default="")


# ----- warm-state deltas -------------------------------------------------
#
# A delta is a small frozen description of one change to an already
# converged network: re-announce, withdraw, a prepend reconfiguration,
# a localpref edit, or a link flap.  ``apply_delta`` applies it to the
# warm RIBs and reconverges only the affected frontier — the engine is
# naturally incremental (exports are only enqueued from state that
# actually changed), so warm-after-delta state is byte-identical to a
# cold rebuild that replays the same history from scratch.  The cold
# path stays authoritative: the differential tests rebuild from scratch
# and compare RIB contents, replay keys, and classifications.


@dataclass(frozen=True)
class AnnounceDelta:
    """(Re-)announce *prefix* from *origin_asn* (see
    :meth:`PropagationEngine.announce` for the prepend semantics)."""

    origin_asn: int
    prefix: Prefix
    prepends: Optional[Dict[int, int]] = None
    default_prepends: int = 0
    tag: str = ""

    kind = "announce"


@dataclass(frozen=True)
class WithdrawDelta:
    """Withdraw *prefix* at its origin."""

    origin_asn: int
    prefix: Prefix

    kind = "withdraw"


@dataclass(frozen=True)
class PrependChange:
    """Re-announce an existing announcement with a new default prepend
    count, keeping its per-neighbor prepends and tag.  This is the
    config-to-config step of the nine-configuration sweep."""

    origin_asn: int
    prefix: Prefix
    prepends: int

    kind = "prepend_change"


@dataclass(frozen=True)
class LocalprefEdit:
    """Set *asn*'s import localpref for routes learned from
    *neighbor_asn* and reprice the already-installed routes."""

    asn: int
    neighbor_asn: int
    value: int

    kind = "localpref_edit"


@dataclass(frozen=True)
class LinkFlap:
    """Fail and/or restore the a-b link.

    ``action`` is ``"down"``, ``"up"``, or ``"flap"`` (down then up,
    each reconverged separately — matching how fault plans replay)."""

    a: int
    b: int
    action: str = "flap"

    kind = "link_flap"

    def __post_init__(self) -> None:
        if self.action not in ("down", "up", "flap"):
            raise EngineError(
                "unknown link flap action %r (want down/up/flap)" % (self.action,)
            )


@dataclass
class DeltaOutcome:
    """What one :meth:`PropagationEngine.apply_delta` call did.

    ``dirty_prefixes`` / ``touched_ases`` bound the re-propagation
    frontier: only these prefixes changed any loc-RIB, only this many
    ASes selected a new best.  ``stats`` has one entry per
    ``run_to_fixpoint`` the delta triggered (two for a full flap)."""

    delta: object
    stats: List[ConvergenceStats]
    dirty_prefixes: Tuple[str, ...]
    touched_ases: int

    @property
    def messages_delivered(self) -> int:
        return sum(s.messages_delivered for s in self.stats)

    @property
    def best_changes(self) -> int:
        return sum(s.best_changes for s in self.stats)

    def replay_key(self) -> tuple:
        """Deterministic summary: per-run replay keys plus the dirty
        frontier (wall time excluded, like ConvergenceStats)."""
        return (
            tuple(s.replay_key() for s in self.stats),
            self.dirty_prefixes,
            self.touched_ases,
        )


class PropagationEngine:
    """Propagates BGP routes over a :class:`Topology`.

    Parameters
    ----------
    topology:
        The AS graph with per-AS policies.
    seed_tree:
        Source of deterministic message delays.
    record_best_changes:
        When True (default), every loc-RIB change is appended to
        ``self.update_log`` — collectors consume this.
    """

    def __init__(
        self,
        topology: Topology,
        seed_tree: Optional[SeedTree] = None,
        record_best_changes: bool = True,
        message_limit: int = DEFAULT_MESSAGE_LIMIT,
        roa_table=None,
        decision_backend: Optional[str] = None,
    ) -> None:
        self.topology = topology
        self.roa_table = roa_table
        self._rng = (seed_tree or SeedTree(0)).child("engine").rng()
        #: Route-selection backend all routers use ("object" = the
        #: oracle filters, "array" = decision-key columns; see
        #: :mod:`repro.bgp.arraytable`).  None picks up the active
        #: ``use_decision_backend`` context.  Results are
        #: byte-identical either way.
        self.decision_backend = (
            decision_backend
            if decision_backend is not None
            else active_decision_backend()
        )
        self.routers: Dict[int, Router] = {
            node.asn: Router(
                node.asn, node.policy,
                decision_backend=self.decision_backend,
            )
            for node in topology.ases()
        }
        self._selections_flushed = 0
        self.now: float = 0.0
        self.record_best_changes = record_best_changes
        self.update_log: List[UpdateEvent] = []
        self.session_message_counts: Dict[Tuple[int, int], int] = {}
        self._heap: List[_Message] = []
        self._seq = 0
        self._last_scheduled: Dict[Tuple[int, int], float] = {}
        self._down_links: Set[frozenset] = set()
        self._message_limit = message_limit
        self._announcements: Dict[Tuple[int, Prefix], Announcement] = {}
        #: Stats of the most recent :meth:`run_to_fixpoint` (None until
        #: the first run completes).
        self.last_stats: Optional[ConvergenceStats] = None
        self._messages_sent = 0
        self._messages_sent_flushed = 0
        # Frontier bookkeeping: per-engine run counter, so run ids are
        # identical however cells/shards are scheduled.  Causality
        # depths live in run-local interval lists inside
        # run_to_fixpoint, only populated while a FrontierTrace is
        # active.
        self._frontier_runs = 0
        # Dirty-set accumulators, non-None only inside apply_delta.
        self._dirty: Optional[Set[Prefix]] = None
        self._touched: Optional[Set[int]] = None

    # ----- public control ------------------------------------------------

    def router(self, asn: int) -> Router:
        try:
            return self.routers[asn]
        except KeyError:
            raise EngineError("no router for AS %d" % asn) from None

    def announce(
        self,
        origin_asn: int,
        prefix: Prefix,
        prepends: Optional[Dict[int, int]] = None,
        default_prepends: int = 0,
        tag: str = "",
    ) -> Announcement:
        """(Re-)announce *prefix* from *origin_asn*.

        ``prepends`` maps neighbor ASN to extra origin prepends for that
        neighbor; unlisted neighbors get ``default_prepends`` plus any
        per-neighbor prepends in the origin's own routing policy.
        Re-announcing with different prepends models the experiment's
        configuration changes.
        """
        announcement = Announcement(
            prefix=prefix,
            origin_asn=origin_asn,
            prepends=dict(prepends or {}),
            default_prepends=default_prepends,
            tag=tag,
        )
        self._announcements[(origin_asn, prefix)] = announcement
        router = self.router(origin_asn)
        router.originate(prefix, tag=tag, now=self.now)
        policy = self.topology.node(origin_asn).policy
        for neighbor in sorted(self.topology.neighbors(origin_asn)):
            if self._link_is_down(origin_asn, neighbor):
                continue
            if policy.blocks_export(neighbor, tag):
                continue
            extra = announcement.prepends_toward(neighbor)
            extra += policy.prepends_toward(neighbor)
            path = ASPath.origin_path(origin_asn, extra)
            self._send(origin_asn, neighbor, prefix, path, tag)
        return announcement

    def withdraw(self, origin_asn: int, prefix: Prefix) -> None:
        """Withdraw *prefix* at its origin."""
        self._announcements.pop((origin_asn, prefix), None)
        router = self.router(origin_asn)
        change = router.withdraw_local(prefix)
        if change.changed:
            self._record_change(origin_asn, prefix, change.new)
        # Export through the same per-neighbor policy checks every
        # other export takes (_export_to_neighbor): a neighbor behind
        # no_export_to / blocked export never saw the route, so it
        # must not receive a spurious withdraw — and when the loc-RIB
        # best is unchanged (the local route was not best), neighbors
        # get the still-current best re-exported, not a withdraw that
        # would clear a route they should keep.
        self._export_after_change(origin_asn, prefix)

    def set_link_down(self, a: int, b: int) -> None:
        """Fail the a-b link: both sides lose routes learned over it."""
        if not self.topology.has_link(a, b):
            raise EngineError("no link %d-%d to fail" % (a, b))
        self._down_links.add(frozenset((a, b)))
        for local, remote in ((a, b), (b, a)):
            router = self.router(local)
            for prefix, change in router.drop_neighbor(remote):
                self._record_change(local, prefix, change.new)
                self._export_after_change(local, prefix)

    def link_is_down(self, a: int, b: int) -> bool:
        """True if the a-b link is currently failed (scheduled outage
        or fault-plan flap)."""
        return self._link_is_down(a, b)

    def set_link_up(self, a: int, b: int) -> None:
        """Restore the a-b link and re-advertise current bests across it."""
        key = frozenset((a, b))
        if key not in self._down_links:
            return
        self._down_links.remove(key)
        for local, remote in ((a, b), (b, a)):
            router = self.router(local)
            for prefix in list(router.loc_rib):
                self._export_to_neighbor(local, remote, prefix)

    def apply_delta(self, delta) -> DeltaOutcome:
        """Apply one warm-state delta and reconverge.

        The converged RIBs stay in place; only state the delta actually
        perturbs re-propagates (the engine only enqueues exports from
        changed loc-RIBs, so the heap inherently bounds the dirty
        frontier).  Returns a :class:`DeltaOutcome` measuring that
        frontier.  The result is byte-identical to rebuilding cold and
        replaying the full history — the cold path remains the
        differential oracle, never a fallback.
        """
        if self._dirty is not None:
            raise EngineError("apply_delta calls cannot nest")
        self._dirty = set()
        self._touched = set()
        stats_list: List[ConvergenceStats] = []
        try:
            if isinstance(delta, AnnounceDelta):
                self.announce(
                    delta.origin_asn,
                    delta.prefix,
                    prepends=delta.prepends,
                    default_prepends=delta.default_prepends,
                    tag=delta.tag,
                )
                # announce() installs the origin's own route without an
                # update-log entry; count the origin in the frontier
                # explicitly.
                self._mark_dirty(delta.origin_asn, delta.prefix)
                stats_list.append(self.run_to_fixpoint())
            elif isinstance(delta, PrependChange):
                previous = self._announcements.get(
                    (delta.origin_asn, delta.prefix)
                )
                if previous is None:
                    raise EngineError(
                        "no live announcement of %s from AS %d to re-prepend"
                        % (delta.prefix, delta.origin_asn)
                    )
                self.announce(
                    delta.origin_asn,
                    delta.prefix,
                    prepends=dict(previous.prepends),
                    default_prepends=delta.prepends,
                    tag=previous.tag,
                )
                self._mark_dirty(delta.origin_asn, delta.prefix)
                stats_list.append(self.run_to_fixpoint())
            elif isinstance(delta, WithdrawDelta):
                self.withdraw(delta.origin_asn, delta.prefix)
                self._mark_dirty(delta.origin_asn, delta.prefix)
                stats_list.append(self.run_to_fixpoint())
            elif isinstance(delta, LocalprefEdit):
                self._apply_localpref_edit(delta)
                stats_list.append(self.run_to_fixpoint())
            elif isinstance(delta, LinkFlap):
                # Down and up reconverge separately, matching how
                # outage plans and fault flaps replay (two records,
                # two fixpoints).
                if delta.action in ("down", "flap"):
                    self.set_link_down(delta.a, delta.b)
                    stats_list.append(self.run_to_fixpoint())
                if delta.action in ("up", "flap"):
                    self.set_link_up(delta.a, delta.b)
                    stats_list.append(self.run_to_fixpoint())
            else:
                raise EngineError(
                    "unknown delta type %r" % type(delta).__name__
                )
        finally:
            dirty, self._dirty = self._dirty, None
            touched, self._touched = self._touched, None
        outcome = DeltaOutcome(
            delta=delta,
            stats=stats_list,
            dirty_prefixes=tuple(sorted(str(p) for p in dirty)),
            touched_ases=len(touched),
        )
        trace_ring = active_frontier()
        if trace_ring is not None:
            trace_ring.record(
                {
                    "kind": "engine_delta",
                    "delta": delta.kind,
                    "dirty_prefixes": len(dirty),
                    "sample": list(outcome.dirty_prefixes[:8]),
                    "touched_ases": outcome.touched_ases,
                    "runs": len(stats_list),
                    "messages_delivered": outcome.messages_delivered,
                    "best_changes": outcome.best_changes,
                }
            )
        return outcome

    def _apply_localpref_edit(self, delta: LocalprefEdit) -> None:
        if not self.topology.has_link(delta.asn, delta.neighbor_asn):
            raise EngineError(
                "no session %d-%d to reprice"
                % (delta.asn, delta.neighbor_asn)
            )
        self.topology.node(delta.asn).policy.set_neighbor_localpref(
            delta.neighbor_asn, delta.value
        )
        router = self.router(delta.asn)
        rel = self.topology.rel(delta.asn, delta.neighbor_asn)
        for prefix, change in router.reprice_neighbor(delta.neighbor_asn, rel):
            self._record_change(delta.asn, prefix, change.new)
            self._export_after_change(delta.asn, prefix)

    def rib_state(self, prefix: Optional[Prefix] = None) -> tuple:
        """Canonical, comparable dump of every adj-RIB-in and loc-RIB.

        Route ages are included — two states are equal only if they are
        byte-identical, which is exactly the warm-vs-cold differential
        contract.  Empty adj-RIB shells (a prefix fully withdrawn
        again) are skipped so warm and cold engines with different
        lazily-created dict shapes still compare equal.
        """
        rows = []
        for asn in sorted(self.routers):
            router = self.routers[asn]
            for pfx in sorted(router.adj_rib_in):
                if prefix is not None and pfx != prefix:
                    continue
                rib = router.adj_rib_in[pfx]
                best = router.loc_rib.get(pfx)
                if not rib and best is None:
                    continue
                rows.append(
                    (
                        asn,
                        str(pfx),
                        tuple(
                            (nbr,) + _route_state(rib[nbr])
                            for nbr in sorted(rib)
                        ),
                        _route_state(best) if best is not None else None,
                    )
                )
        return tuple(rows)

    def audit_decision_groups(self) -> List[str]:
        """Cross-check every router's array-backend group mirrors
        against its adj-RIB-in (empty when consistent; always empty on
        the object backend)."""
        problems: List[str] = []
        for asn in sorted(self.routers):
            problems.extend(self.routers[asn].audit_groups())
        return problems

    def _mark_dirty(self, asn: int, prefix: Prefix) -> None:
        if self._dirty is not None:
            self._dirty.add(prefix)
            self._touched.add(asn)

    def run_to_fixpoint(self) -> ConvergenceStats:
        """Deliver queued messages until the network is quiet."""
        # A failed run (dispute-wheel cap, crash mid-delivery) must not
        # leave the previous run's stats visible as if they were this
        # run's.
        self.last_stats = None
        stats = ConvergenceStats(
            started_at=self.now, message_limit=self._message_limit
        )
        delivered = 0
        dropped = 0
        changes = 0
        peak_depth = len(self._heap)
        sent_before = self._messages_sent
        # One call returning None per run is the entire disabled-state
        # frontier cost; enabled, the loop tracks the changed-prefix
        # frontier and message causality depth per window.
        trace_ring = active_frontier()
        acc = None
        if trace_ring is not None:
            acc = EngineRunFrontier(trace_ring, self._frontier_runs)
            self._frontier_runs += 1
        # Window accounting stays in plain locals; the accumulator is
        # only called once per window (see EngineRunFrontier.add_window).
        window_size = EngineRunFrontier.window_size
        win_count = 0
        win_changed = 0
        win_frontier: set = set()
        win_peak_depth = 0
        win_peak_causal = 0
        # Causality depths as seq intervals: messages triggered by one
        # delivery get consecutive seqs, so each change appends one
        # (start, end, depth) triple instead of a dict entry per sent
        # message; deliveries look their seq up with one bisect.
        causal_starts: List[int] = []
        causal_ends: List[int] = []
        causal_depths: List[int] = []
        with span("engine.run_to_fixpoint") as trace:
            while self._heap:
                depth = len(self._heap)
                if depth > peak_depth:
                    peak_depth = depth
                message = heapq.heappop(self._heap)
                if message.deliver_at > self.now:
                    self.now = message.deliver_at
                if self._link_is_down(message.sender, message.receiver):
                    # Lost on a failed link: not a delivery, so it
                    # counts toward neither the dispute-wheel limit
                    # nor limit_proximity.
                    dropped += 1
                    continue
                delivered += 1
                if delivered > self._message_limit:
                    raise EngineError(
                        "message limit exceeded: likely policy dispute wheel"
                    )
                receiver = self.router(message.receiver)
                rel = self.topology.rel(message.receiver, message.sender)
                path = message.path
                if (
                    path is not None
                    and receiver.policy.enforce_rov
                    and rov_drops_route(self.roa_table, message.prefix,
                                        path.origin)
                ):
                    path = None  # RPKI-invalid: rejected on import (§2.3)
                change = receiver.receive(
                    neighbor_asn=message.sender,
                    rel=rel,
                    prefix=message.prefix,
                    path=path,
                    now=self.now,
                    tag=message.tag,
                )
                if acc is None:
                    if change.changed:
                        changes += 1
                        self._record_change(
                            message.receiver, message.prefix, change.new
                        )
                        self._export_after_change(
                            message.receiver, message.prefix
                        )
                else:
                    seq = message.seq
                    index = bisect_right(causal_starts, seq)
                    causal = (
                        causal_depths[index - 1]
                        if index and seq <= causal_ends[index - 1]
                        else 0
                    )
                    win_count += 1
                    if depth > win_peak_depth:
                        win_peak_depth = depth
                    if causal > win_peak_causal:
                        win_peak_causal = causal
                    if change.changed:
                        changes += 1
                        seq_before = self._seq
                        self._record_change(
                            message.receiver, message.prefix, change.new
                        )
                        self._export_after_change(
                            message.receiver, message.prefix
                        )
                        win_changed += 1
                        win_frontier.add(message.prefix)
                        if self._seq > seq_before:
                            # Messages this delivery just triggered sit
                            # one causality step deeper.
                            causal_starts.append(seq_before + 1)
                            causal_ends.append(self._seq)
                            causal_depths.append(causal + 1)
                    if win_count >= window_size:
                        acc.add_window(
                            win_count, win_changed, win_frontier,
                            win_peak_depth, win_peak_causal,
                        )
                        win_count = 0
                        win_changed = 0
                        win_frontier = set()
                        win_peak_depth = 0
                        win_peak_causal = 0
        if acc is not None:
            acc.add_window(
                win_count, win_changed, win_frontier,
                win_peak_depth, win_peak_causal,
            )
            acc.finish()
        stats.messages_delivered = delivered
        stats.messages_dropped = dropped
        stats.best_changes = changes
        stats.converged_at = self.now
        stats.messages_sent = self._messages_sent - sent_before
        stats.peak_heap_depth = peak_depth
        stats.wall_seconds = trace.duration or 0.0
        self.last_stats = stats
        self._flush_metrics(stats)
        return stats

    def _flush_metrics(self, stats: ConvergenceStats) -> None:
        """Publish one run's counters in a single batch (the hot loop
        above only touches plain locals)."""
        registry = get_registry()
        registry.counter("engine.runs").inc()
        registry.counter("engine.messages_delivered").inc(
            stats.messages_delivered
        )
        registry.counter("engine.messages_dropped").inc(
            stats.messages_dropped
        )
        registry.counter("engine.best_changes").inc(stats.best_changes)
        # Sends can happen outside run_to_fixpoint (announce/withdraw/
        # link flaps queue messages); flush the delta since last time so
        # the counter tracks session_message_counts exactly.
        sent_delta = self._messages_sent - self._messages_sent_flushed
        self._messages_sent_flushed = self._messages_sent
        registry.counter("engine.messages_sent").inc(sent_delta)
        # Per-backend selection throughput: routers count selections
        # locally (one int add in the hot path); flush the delta here
        # so bench_parallel/bench_sweep can pin the backend speedup.
        selections = sum(r.selections for r in self.routers.values())
        registry.counter(
            "engine.selections_%s" % self.decision_backend
        ).inc(selections - self._selections_flushed)
        self._selections_flushed = selections
        registry.gauge("engine.heap_depth_peak").set(stats.peak_heap_depth)
        registry.gauge("engine.message_limit_proximity").set(
            stats.limit_proximity
        )
        registry.histogram("engine.convergence_sim_seconds").observe(
            stats.duration
        )
        if stats.limit_proximity >= MESSAGE_LIMIT_WARN_RATIO:
            _log.warning(
                "convergence run approaching message limit",
                delivered=stats.messages_delivered,
                limit=self._message_limit,
                proximity=round(stats.limit_proximity, 3),
            )
        if _log.is_enabled_for("debug"):
            _log.debug(
                "fixpoint reached",
                delivered=stats.messages_delivered,
                dropped=stats.messages_dropped,
                sent=stats.messages_sent,
                best_changes=stats.best_changes,
                sim_duration=round(stats.duration, 3),
                wall_seconds=round(stats.wall_seconds, 6),
                peak_heap_depth=stats.peak_heap_depth,
            )

    def advance_to(self, when: float) -> None:
        """Move the engine clock forward (between experiment rounds)."""
        if when < self.now:
            raise EngineError("engine clock cannot move backwards")
        self.now = when

    # ----- data-plane helpers ---------------------------------------------

    def best_route(self, asn: int, prefix: Prefix) -> Optional[Route]:
        return self.router(asn).best_route(prefix)

    # ----- internals --------------------------------------------------------

    def _link_is_down(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._down_links

    def _record_change(
        self, asn: int, prefix: Prefix, route: Optional[Route]
    ) -> None:
        # Dirty tracking first: apply_delta measures its frontier even
        # when update-log recording is disabled.
        self._mark_dirty(asn, prefix)
        if self.record_best_changes:
            self.update_log.append(
                UpdateEvent(time=self.now, asn=asn, prefix=prefix, route=route)
            )

    def _export_after_change(self, asn: int, prefix: Prefix) -> None:
        for neighbor in sorted(self.topology.neighbors(asn)):
            if not self._link_is_down(asn, neighbor):
                self._export_to_neighbor(asn, neighbor, prefix)

    def _export_to_neighbor(self, asn: int, neighbor: int, prefix: Prefix) -> None:
        """Send the current best for *prefix* (or a withdraw) to
        *neighbor*, applying export policy and prepend policy."""
        router = self.router(asn)
        best = router.best_route(prefix)
        topology = self.topology
        policy = topology.node(asn).policy
        if best is not None and policy.blocks_export(neighbor, best.tag):
            best = None
        to_rel = topology.rel(asn, neighbor)
        if best is None:
            if neighbor not in policy.no_export_to:
                self._send(asn, neighbor, prefix, None, "")
            return
        if best.learned_from is None:
            # Locally originated: handled by announce(); the stored
            # announcement carries per-neighbor prepends.
            announcement = self._announcements.get((asn, prefix))
            extra = (
                announcement.prepends_toward(neighbor)
                if announcement is not None
                else 0
            )
            extra += topology.node(asn).policy.prepends_toward(neighbor)
            path = ASPath.origin_path(asn, extra)
            self._send(asn, neighbor, prefix, path, best.tag)
            return
        learned_rel = topology.rel(asn, best.learned_from)
        allowed = may_export(
            learned_rel,
            to_rel,
            learned_fabric=topology.is_fabric(asn, best.learned_from),
            to_fabric=topology.is_fabric(asn, neighbor),
        )
        if not allowed:
            # If a previously exported route is no longer exportable,
            # the neighbor must see a withdraw.
            self._send(asn, neighbor, prefix, None, "")
            return
        if best.path.contains(neighbor):
            # Receiver would reject it as a loop anyway; send withdraw
            # to clear any stale state.
            self._send(asn, neighbor, prefix, None, "")
            return
        prepends = 1 + topology.node(asn).policy.prepends_toward(neighbor)
        path = best.path.prepended_by(asn, prepends)
        self._send(asn, neighbor, prefix, path, best.tag)

    def _send(
        self,
        sender: int,
        receiver: int,
        prefix: Prefix,
        path: Optional[ASPath],
        tag: str,
    ) -> None:
        session = (sender, receiver)
        delay = BASE_DELAY + self._rng.expovariate(1.0 / MEAN_EXTRA_DELAY)
        deliver_at = self.now + delay
        # FIFO per session: never deliver before a previously sent message.
        previous = self._last_scheduled.get(session, 0.0)
        if deliver_at <= previous:
            deliver_at = previous + 1e-6
        self._last_scheduled[session] = deliver_at
        self.session_message_counts[session] = (
            self.session_message_counts.get(session, 0) + 1
        )
        self._messages_sent += 1
        self._seq += 1
        heapq.heappush(
            self._heap,
            _Message(
                deliver_at=deliver_at,
                seq=self._seq,
                sender=sender,
                receiver=receiver,
                prefix=prefix,
                path=path,
                tag=tag,
            ),
        )
