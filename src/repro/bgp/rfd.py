"""Route flap damping (RFD) penalty model (RFC 2439 / RIPE-580).

The paper (§3.3) spaces configuration changes one hour apart so that
RFD suppression — enabled by ~9% of ASes, with observed suppress times
under one hour [15] — cannot bias the probing rounds.  This module
models the penalty bookkeeping so the experiment scheduler can verify
that property, and so ablation benches can show what *would* happen
with tighter spacing.

Parameters follow common vendor defaults: penalty per flap 1000,
suppress threshold 2000, reuse threshold 750, half-life 15 minutes,
maximum suppress time 60 minutes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..netutil import Prefix

PENALTY_PER_FLAP = 1000.0
SUPPRESS_THRESHOLD = 2000.0
REUSE_THRESHOLD = 750.0
HALF_LIFE_SECONDS = 15 * 60.0
MAX_SUPPRESS_SECONDS = 60 * 60.0


@dataclass
class DampingState:
    """Penalty state for one (prefix, session) pair."""

    penalty: float = 0.0
    last_updated: float = 0.0
    suppressed_since: float = -1.0

    def decayed_penalty(self, now: float) -> float:
        elapsed = max(0.0, now - self.last_updated)
        return self.penalty * math.pow(0.5, elapsed / HALF_LIFE_SECONDS)


class RouteFlapDamper:
    """Tracks RFD penalties per (prefix, session).

    ``record_flap`` is called for each update/withdraw observed on the
    session; ``is_suppressed`` answers whether the route would currently
    be damped.
    """

    def __init__(
        self,
        penalty_per_flap: float = PENALTY_PER_FLAP,
        suppress_threshold: float = SUPPRESS_THRESHOLD,
        reuse_threshold: float = REUSE_THRESHOLD,
        half_life: float = HALF_LIFE_SECONDS,
        max_suppress: float = MAX_SUPPRESS_SECONDS,
    ) -> None:
        self.penalty_per_flap = penalty_per_flap
        self.suppress_threshold = suppress_threshold
        self.reuse_threshold = reuse_threshold
        self.half_life = half_life
        self.max_suppress = max_suppress
        self._state: Dict[Tuple[Prefix, int], DampingState] = {}

    def _decay(self, state: DampingState, now: float) -> None:
        elapsed = max(0.0, now - state.last_updated)
        state.penalty *= math.pow(0.5, elapsed / self.half_life)
        state.last_updated = now

    def record_flap(self, prefix: Prefix, session_asn: int, now: float) -> float:
        """Record one flap; returns the new penalty."""
        key = (prefix, session_asn)
        state = self._state.setdefault(key, DampingState(last_updated=now))
        self._decay(state, now)
        state.penalty += self.penalty_per_flap
        if (
            state.penalty >= self.suppress_threshold
            and state.suppressed_since < 0
        ):
            state.suppressed_since = now
        return state.penalty

    def is_suppressed(self, prefix: Prefix, session_asn: int, now: float) -> bool:
        """Would this route currently be suppressed?"""
        key = (prefix, session_asn)
        state = self._state.get(key)
        if state is None or state.suppressed_since < 0:
            return False
        if now - state.suppressed_since >= self.max_suppress:
            state.suppressed_since = -1.0
            return False
        self._decay(state, now)
        if state.penalty < self.reuse_threshold:
            state.suppressed_since = -1.0
            return False
        return True

    def penalty_of(self, prefix: Prefix, session_asn: int, now: float) -> float:
        state = self._state.get((prefix, session_asn))
        if state is None:
            return 0.0
        return state.decayed_penalty(now)


def min_safe_spacing(flaps_per_change: int = 2) -> float:
    """Smallest spacing between configuration changes (seconds) that
    keeps the steady-state penalty below the suppress threshold.

    Each configuration change causes *flaps_per_change* flaps on a
    session.  Spacing T is safe when the geometric steady state
    ``flaps * penalty / (1 - 0.5**(T/half_life))`` stays below the
    suppress threshold.
    """
    if flaps_per_change < 1:
        raise ValueError("flaps_per_change must be >= 1")
    per_change = flaps_per_change * PENALTY_PER_FLAP
    if per_change >= SUPPRESS_THRESHOLD:
        # A single change can hit the threshold; no spacing prevents the
        # first suppression window, so return the max suppress time.
        return MAX_SUPPRESS_SECONDS
    # Solve per_change / (1 - 0.5**(T/HL)) < SUPPRESS_THRESHOLD for T.
    ratio = 1.0 - per_change / SUPPRESS_THRESHOLD
    return HALF_LIFE_SECONDS * math.log(1.0 / ratio, 2.0)
