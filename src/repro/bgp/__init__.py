"""AS-level BGP simulator.

This package implements the routing substrate the paper's method runs on:

- :mod:`repro.bgp.attributes` — routes and AS paths (with prepending);
- :mod:`repro.bgp.decision` — the BGP decision process, including the
  path-length-insensitive and route-age variants analysed in Appendix A;
- :mod:`repro.bgp.policy` — localpref profiles, Gao-Rexford + R&E-fabric
  export rules, and per-neighbor prepend policies;
- :mod:`repro.bgp.router` — per-AS adj-RIB-in / loc-RIB state;
- :mod:`repro.bgp.engine` — event-driven propagation to fixpoint with
  update counting (drives Figure 3 churn and the measurement prefix);
- :mod:`repro.bgp.fastpath` — synchronous relaxation used for bulk
  collector/RIPE view computation (Table 4, Figure 5);
- :mod:`repro.bgp.arraytable` — structure-of-arrays RIB and the
  vectorized "array" decision backend (byte-identical to the
  object-based oracle, proven by the differential test layer);
- :mod:`repro.bgp.rfd` — a route flap damping penalty model.
"""

from .arraytable import (
    ArrayRibGroup,
    ArrayRouteTable,
    active_decision_backend,
    use_decision_backend,
)
from .attributes import ASPath, Route, Announcement
from .decision import DecisionProcess, Step
from .policy import RoutingPolicy, Rel, may_export
from .router import Router
from .engine import PropagationEngine, ConvergenceStats
from .fastpath import propagate_fastpath
from .rpki import (
    IRRRegistry,
    IRRRouteObject,
    MeasurementRegistrations,
    ROA,
    ROATable,
    ValidationState,
)

__all__ = [
    "ArrayRibGroup",
    "ArrayRouteTable",
    "active_decision_backend",
    "use_decision_backend",
    "ASPath",
    "Route",
    "Announcement",
    "DecisionProcess",
    "Step",
    "RoutingPolicy",
    "Rel",
    "may_export",
    "Router",
    "PropagationEngine",
    "ConvergenceStats",
    "propagate_fastpath",
    "IRRRegistry",
    "IRRRouteObject",
    "MeasurementRegistrations",
    "ROA",
    "ROATable",
    "ValidationState",
]
