"""Routing policy: relationships, localpref assignment, export rules.

Export follows Gao-Rexford with one R&E-specific extension (§2.1): R&E
backbones re-export routes learned from *fabric* peers (other R&E
backbones/NRENs) to their other fabric peers, building the global R&E
fabric — e.g. Internet2 exports GEANT routes to AARNet.  A link is part
of the fabric when both ends mark it so in the topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Set

from ..errors import PolicyError
from .decision import DecisionProcess


class Rel(Enum):
    """The relationship of a neighbor, from the local AS's viewpoint."""

    CUSTOMER = "customer"   # the neighbor is our customer
    PROVIDER = "provider"   # the neighbor is our provider
    PEER = "peer"           # settlement-free peer

    def flipped(self) -> "Rel":
        if self is Rel.CUSTOMER:
            return Rel.PROVIDER
        if self is Rel.PROVIDER:
            return Rel.CUSTOMER
        return Rel.PEER


#: Conventional Gao-Rexford localpref tiers used as profile defaults.
LP_CUSTOMER = 300
LP_PEER = 200
LP_RE_PREFERRED = 150
LP_PROVIDER = 100

ORIGIN = None  # sentinel "relationship" of locally originated routes


def may_export(
    learned_rel: Optional[Rel],
    to_rel: Rel,
    learned_fabric: bool = False,
    to_fabric: bool = False,
) -> bool:
    """Gao-Rexford export rule with the R&E fabric extension.

    *learned_rel* is the relationship of the neighbor the route was
    learned from (``None`` for locally originated routes); *to_rel* is
    the relationship of the neighbor the route would be exported to.
    ``learned_fabric``/``to_fabric`` flag whether those sessions ride
    R&E fabric links.
    """
    if learned_rel is None or learned_rel is Rel.CUSTOMER:
        return True  # own and customer routes go to everyone
    if to_rel is Rel.CUSTOMER:
        return True  # everything goes to customers
    if learned_fabric and to_fabric and to_rel is Rel.PEER:
        return True  # R&E fabric: re-export fabric-peer routes to fabric peers
    return False


@dataclass
class RoutingPolicy:
    """Per-AS routing policy.

    ``localpref`` maps neighbor ASN to the localpref assigned to routes
    learned from that neighbor; neighbors not listed receive
    ``default_localpref_for`` their relationship tier.  ``export_prepends``
    maps neighbor ASN to extra copies of *our own* ASN added whenever we
    export any route to that neighbor (origin prepending and transit
    prepending, e.g. CENIC prepending its commodity announcements).
    ``default_route_via`` names a neighbor used as data-plane default when
    no route is known (§2.3's default-route caveat).  ``path_length_
    sensitive``/``age_tiebreak`` select the decision-process variant.
    ``no_export_to`` lists neighbors that never receive exports — the
    "hidden commodity transit" of §4.2, where a member uses a commodity
    provider for egress but does not announce its prefixes to it.
    ``no_export_tags`` scopes the filter to announcement tags: the paper
    arranged that the R&E measurement announcement never reached
    commodity providers (§3.1 verified only R&E networks carried it),
    which SURF implements here by not exporting "re"-tagged routes to
    its commodity transit.
    """

    localpref: Dict[int, int] = field(default_factory=dict)
    no_export_to: Set[int] = field(default_factory=set)
    no_export_tags: Dict[int, Set[str]] = field(default_factory=dict)
    tier_localpref: Dict[Rel, int] = field(
        default_factory=lambda: {
            Rel.CUSTOMER: LP_CUSTOMER,
            Rel.PEER: LP_PEER,
            Rel.PROVIDER: LP_PROVIDER,
        }
    )
    export_prepends: Dict[int, int] = field(default_factory=dict)
    path_length_sensitive: bool = True
    age_tiebreak: bool = True
    default_route_via: Optional[int] = None
    enforce_rov: bool = False  # drop RPKI-invalid routes on import

    def __post_init__(self) -> None:
        for asn, value in self.localpref.items():
            if value < 0:
                raise PolicyError(
                    "negative localpref %d for neighbor %d" % (value, asn)
                )
        for asn, count in self.export_prepends.items():
            if count < 0:
                raise PolicyError(
                    "negative prepend count %d toward neighbor %d"
                    % (count, asn)
                )

    def localpref_for(self, neighbor_asn: int, rel: Rel) -> int:
        """Localpref to assign to a route learned from *neighbor_asn*."""
        if neighbor_asn in self.localpref:
            return self.localpref[neighbor_asn]
        return self.tier_localpref[rel]

    def prepends_toward(self, neighbor_asn: int) -> int:
        """Extra self-prepends on exports to *neighbor_asn*."""
        return self.export_prepends.get(neighbor_asn, 0)

    def blocks_export(self, neighbor_asn: int, tag: str = "") -> bool:
        """True if exports (of routes carrying *tag*) to this neighbor
        are filtered."""
        if neighbor_asn in self.no_export_to:
            return True
        return tag in self.no_export_tags.get(neighbor_asn, ())

    def decision_process(self) -> DecisionProcess:
        return DecisionProcess.standard(
            path_length_sensitive=self.path_length_sensitive,
            age_tiebreak=self.age_tiebreak,
        )

    def set_neighbor_localpref(self, neighbor_asn: int, value: int) -> None:
        if value < 0:
            raise PolicyError("negative localpref %d" % value)
        self.localpref[neighbor_asn] = value

    def set_export_prepends(self, neighbor_asn: int, count: int) -> None:
        if count < 0:
            raise PolicyError("negative prepend count %d" % count)
        self.export_prepends[neighbor_asn] = count


def equal_upstream_policy(
    re_neighbors: Dict[int, Rel], commodity_neighbors: Dict[int, Rel]
) -> RoutingPolicy:
    """Policy assigning the *same* localpref to R&E and commodity
    upstream routes, so AS path length breaks the tie (§4's
    "switch to R&E" population)."""
    policy = RoutingPolicy()
    for asn in re_neighbors:
        policy.set_neighbor_localpref(asn, LP_PROVIDER)
    for asn in commodity_neighbors:
        policy.set_neighbor_localpref(asn, LP_PROVIDER)
    return policy


def re_preferred_policy(
    re_neighbors: Dict[int, Rel], commodity_neighbors: Dict[int, Rel]
) -> RoutingPolicy:
    """Policy assigning R&E upstreams a higher localpref than commodity
    upstreams (the deterministic-R&E population)."""
    policy = RoutingPolicy()
    for asn in re_neighbors:
        policy.set_neighbor_localpref(asn, LP_RE_PREFERRED)
    for asn in commodity_neighbors:
        policy.set_neighbor_localpref(asn, LP_PROVIDER)
    return policy


def commodity_preferred_policy(
    re_neighbors: Dict[int, Rel], commodity_neighbors: Dict[int, Rel]
) -> RoutingPolicy:
    """Policy preferring commodity routes over R&E routes (the
    "always commodity" population)."""
    policy = RoutingPolicy()
    for asn in re_neighbors:
        policy.set_neighbor_localpref(asn, LP_PROVIDER)
    for asn in commodity_neighbors:
        policy.set_neighbor_localpref(asn, LP_RE_PREFERRED)
    return policy
