"""The BGP decision process.

A :class:`DecisionProcess` is an ordered list of tie-breaking steps.  The
default order mirrors common router implementations and the paper's
analysis (§1, §A):

1. highest local preference;
2. shortest AS path (skipped by *path-length-insensitive* ASes, §A);
3. lowest MED;
4. oldest route (only when ``age_tiebreak`` is enabled — §A shows most
   R&E ASes broke ties with path length, with limited evidence for
   route-age tie-breaking);
5. lowest neighbor ASN (final deterministic tie-break, standing in for
   lowest router ID).

Each step is a pure filter: given the surviving candidate routes it
returns the subset that wins that step.  ``best()`` runs the steps in
order until one candidate survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..errors import PolicyError
from .attributes import Route


class Step(Enum):
    """Identifiers for the individual decision steps."""

    HIGHEST_LOCALPREF = "highest-localpref"
    SHORTEST_AS_PATH = "shortest-as-path"
    LOWEST_MED = "lowest-med"
    OLDEST_ROUTE = "oldest-route"
    LOWEST_NEIGHBOR_ASN = "lowest-neighbor-asn"


def _keep_min(routes: List[Route], key: Callable[[Route], float]) -> List[Route]:
    smallest = min(key(route) for route in routes)
    return [route for route in routes if key(route) == smallest]


def _highest_localpref(routes: List[Route]) -> List[Route]:
    return _keep_min(routes, lambda r: -r.localpref)


def _shortest_as_path(routes: List[Route]) -> List[Route]:
    return _keep_min(routes, lambda r: r.path.length)


def _lowest_med(routes: List[Route]) -> List[Route]:
    return _keep_min(routes, lambda r: r.med)


def _oldest_route(routes: List[Route]) -> List[Route]:
    return _keep_min(routes, lambda r: r.installed_at)


def _lowest_neighbor_asn(routes: List[Route]) -> List[Route]:
    """Final deterministic tie-break: lowest neighbor ASN wins.

    A route with ``learned_from=None`` has no neighbor to compare (it
    is locally originated, or synthesised without provenance); it maps
    to ``+inf`` so it *loses* to any route with a known neighbor rather
    than silently beating all of them.  Locally originated routes never
    reach this step in practice — their localpref
    (:data:`~repro.bgp.router.LOCAL_ROUTE_LOCALPREF`) wins step one.
    """
    return _keep_min(
        routes,
        lambda r: (
            r.learned_from
            if r.learned_from is not None
            else float("inf")
        ),
    )


_STEP_FUNCTIONS = {
    Step.HIGHEST_LOCALPREF: _highest_localpref,
    Step.SHORTEST_AS_PATH: _shortest_as_path,
    Step.LOWEST_MED: _lowest_med,
    Step.OLDEST_ROUTE: _oldest_route,
    Step.LOWEST_NEIGHBOR_ASN: _lowest_neighbor_asn,
}

#: The raw attribute each step compares, for provenance reporting (the
#: filter functions above compare derived keys — e.g. negated
#: localpref — which would be confusing in an audit trail).
_STEP_VALUES = {
    Step.HIGHEST_LOCALPREF: lambda r: r.localpref,
    Step.SHORTEST_AS_PATH: lambda r: r.path.length,
    Step.LOWEST_MED: lambda r: r.med,
    Step.OLDEST_ROUTE: lambda r: r.installed_at,
    Step.LOWEST_NEIGHBOR_ASN: lambda r: r.learned_from,
}

DEFAULT_STEPS: Tuple[Step, ...] = (
    Step.HIGHEST_LOCALPREF,
    Step.SHORTEST_AS_PATH,
    Step.LOWEST_MED,
    Step.OLDEST_ROUTE,
    Step.LOWEST_NEIGHBOR_ASN,
)


@dataclass(frozen=True)
class DecisionProcess:
    """An ordered BGP decision process.

    Use :meth:`standard` for the default process; pass
    ``path_length_sensitive=False`` to model ASes that ignore AS path
    length (Appendix A case J), or ``age_tiebreak=False`` for routers
    that skip the oldest-route step.
    """

    steps: Tuple[Step, ...] = DEFAULT_STEPS

    @classmethod
    def standard(
        cls,
        path_length_sensitive: bool = True,
        age_tiebreak: bool = True,
    ) -> "DecisionProcess":
        steps = [Step.HIGHEST_LOCALPREF]
        if path_length_sensitive:
            steps.append(Step.SHORTEST_AS_PATH)
        steps.append(Step.LOWEST_MED)
        if age_tiebreak:
            steps.append(Step.OLDEST_ROUTE)
        steps.append(Step.LOWEST_NEIGHBOR_ASN)
        return cls(tuple(steps))

    @property
    def path_length_sensitive(self) -> bool:
        return Step.SHORTEST_AS_PATH in self.steps

    def best(self, routes: Iterable[Route]) -> Optional[Route]:
        """Return the single best route, or None if *routes* is empty.

        The final LOWEST_NEIGHBOR_ASN step guarantees a unique winner
        among routes from distinct neighbors; if two candidates from the
        same neighbor survive every step the process is ill-formed and a
        PolicyError is raised.
        """
        candidates = list(routes)
        if not candidates:
            return None
        for step in self.steps:
            if len(candidates) == 1:
                break
            candidates = _STEP_FUNCTIONS[step](candidates)
        if len(candidates) > 1:
            # Distinct routes from the same neighbor for the same prefix
            # should never coexist in an adj-RIB.
            raise PolicyError(
                "decision process did not yield a unique best route: %s"
                % ("; ".join(str(route) for route in candidates),)
            )
        return candidates[0]

    def best_verbose(
        self, routes: Iterable[Route]
    ) -> Tuple[Optional[Route], List[dict]]:
        """Run the decision process and narrate it.

        Returns ``(winner, steps)`` where *winner* is exactly what
        :meth:`best` would return and *steps* is one dict per executed
        step::

            {"step": "highest-localpref",
             "entering": [0, 1, 2],       # candidate indices in
             "values": [100, 100, 90],    # the attribute compared
             "survivors": [0, 1]}         # candidate indices out

        Indices refer to positions in the *routes* argument, so callers
        can pair them with their own candidate summaries.  Used by the
        provenance layer (:mod:`repro.obs.provenance`); the plain
        :meth:`best` stays allocation-free for the hot path.
        """
        candidates = list(routes)
        steps: List[dict] = []
        if not candidates:
            return None, steps
        index_of = {id(route): i for i, route in enumerate(candidates)}
        surviving = candidates
        for step in self.steps:
            if len(surviving) == 1:
                break
            value_of = _STEP_VALUES[step]
            entering = surviving
            surviving = _STEP_FUNCTIONS[step](surviving)
            steps.append({
                "step": step.value,
                "entering": [index_of[id(r)] for r in entering],
                "values": [value_of(r) for r in entering],
                "survivors": [index_of[id(r)] for r in surviving],
            })
        if len(surviving) > 1:
            raise PolicyError(
                "decision process did not yield a unique best route: %s"
                % ("; ".join(str(route) for route in surviving),)
            )
        return surviving[0], steps

    def ranks_equal(self, a: Route, b: Route) -> bool:
        """True if *a* and *b* tie on every step before the final
        neighbor-ASN tie-break (useful in tests)."""
        for step in self.steps:
            if step is Step.LOWEST_NEIGHBOR_ASN:
                break
            survivors = _STEP_FUNCTIONS[step]([a, b])
            if len(survivors) == 1:
                return False
        return True


def explain_choice(process: DecisionProcess, routes: Sequence[Route]) -> List[str]:
    """Narrate the decision: one line per step describing the surviving
    candidates.  Intended for examples and debugging output."""
    lines: List[str] = []
    candidates = list(routes)
    if not candidates:
        return ["no candidate routes"]
    lines.append("%d candidate route(s)" % len(candidates))
    for step in process.steps:
        if len(candidates) == 1:
            break
        candidates = _STEP_FUNCTIONS[step](candidates)
        lines.append(
            "%s -> %d candidate(s): %s"
            % (
                step.value,
                len(candidates),
                "; ".join("[%s]" % route.path for route in candidates),
            )
        )
    return lines
