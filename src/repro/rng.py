"""Deterministic hierarchical random number generation.

Every stochastic decision in the simulator flows from a single experiment
seed through a :class:`SeedTree`.  Each named child derives its seed from
the parent seed and the child's label, so adding a new consumer of
randomness never perturbs the streams of existing consumers.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a 64-bit child seed from a parent seed and a label.

    Uses BLAKE2b so the mapping is stable across Python versions and
    processes (unlike ``hash()``).
    """
    digest = hashlib.blake2b(
        label.encode("utf-8"),
        digest_size=8,
        key=parent_seed.to_bytes(8, "little", signed=False),
    ).digest()
    return int.from_bytes(digest, "little")


class SeedTree:
    """A node in the deterministic seed hierarchy.

    >>> tree = SeedTree(42)
    >>> a = tree.child("topology").rng()
    >>> b = tree.child("topology").rng()
    >>> a.random() == b.random()
    True
    """

    __slots__ = ("seed", "label")

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = seed & ((1 << 64) - 1)
        self.label = label

    def child(self, label: str) -> "SeedTree":
        """Return the child node for *label* (pure function of inputs)."""
        return SeedTree(derive_seed(self.seed, label), label)

    def child_seed(self, label: str) -> int:
        """The child node's raw 64-bit seed.

        Equivalent to ``tree.child(label).seed`` without building the
        node — the form shipped to shard worker processes, which
        re-derive their per-prefix streams from it with
        :func:`derive_seed` alone.
        """
        return derive_seed(self.seed, label)

    def rng(self) -> random.Random:
        """Return a fresh ``random.Random`` seeded for this node."""
        return random.Random(self.seed)

    def __repr__(self) -> str:
        return "SeedTree(seed=%d, label=%r)" % (self.seed, self.label)


def poisson(rng: random.Random, lam: float) -> int:
    """Draw from Poisson(*lam*) by inverse-CDF inversion.

    Consumes exactly **one** uniform from *rng* regardless of the
    value drawn, so callers' downstream draws stay aligned across
    parameter changes (a multi-draw sampler would re-key every stream
    after it whenever the rate changed).

    Exact for the small rates this repo uses (background-flap counts
    per inter-round gap, typically « 10).  For very large *lam* (where
    ``exp(-lam)`` underflows, around 745) the walk is capped at
    ``lam + 10·sqrt(lam)`` and returns the cap — callers at that scale
    should use a normal approximation instead.
    """
    if lam < 0.0:
        raise ValueError("poisson rate must be >= 0")
    if lam == 0.0:
        return 0
    u = rng.random()
    probability = math.exp(-lam)
    cdf = probability
    k = 0
    cap = int(lam + 10.0 * math.sqrt(lam) + 16.0)
    while u > cdf and k < cap:
        k += 1
        probability *= lam / k
        cdf += probability
    return k


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one of *items* with the given relative *weights*."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if point < cumulative:
            return item
    return items[-1]


def sample_heavy_tailed_count(rng: random.Random, mean: float, maximum: int) -> int:
    """Draw a positive integer with a heavy-tailed (geometric-ish)
    distribution whose mean approximates *mean*, capped at *maximum*.

    Used for per-AS prefix counts: most ASes originate one or a few
    prefixes while a few originate many, matching the 18K-prefixes /
    2.6K-ASes shape in the paper.
    """
    if mean < 1.0:
        raise ValueError("mean must be >= 1")
    if maximum < 1:
        raise ValueError("maximum must be >= 1")
    # Geometric on {1, 2, ...} has mean 1/p; occasionally square the draw
    # to fatten the tail while keeping the mean near the target.
    p = 1.0 / mean
    count = 1
    while rng.random() > p and count < maximum:
        count += 1
    if count < maximum and rng.random() < 0.03:
        count = min(maximum, count * 2 + rng.randrange(4))
    return count


def stable_shuffle(rng: random.Random, items: Iterable[T]) -> List[T]:
    """Return a shuffled list copy of *items* (input untouched)."""
    out = list(items)
    rng.shuffle(out)
    return out
