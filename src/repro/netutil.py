"""Integer-based IPv4 address and prefix utilities.

The simulator handles tens of thousands of prefixes and hundreds of
thousands of probe targets, so addresses are plain ``int`` values and
prefixes are lightweight value objects rather than :mod:`ipaddress`
instances.  Helpers convert to and from dotted-quad notation only at I/O
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from .errors import AddressError

_MAX_ADDR = (1 << 32) - 1


def parse_address(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer.

    >>> parse_address("192.0.2.1")
    3221225985
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError("expected dotted quad, got %r" % (text,))
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError("non-numeric octet in %r" % (text,))
        octet = int(part)
        if octet > 255:
            raise AddressError("octet out of range in %r" % (text,))
        value = (value << 8) | octet
    return value


def format_address(value: int) -> str:
    """Format an integer IPv4 address as a dotted quad.

    >>> format_address(3221225985)
    '192.0.2.1'
    """
    if not 0 <= value <= _MAX_ADDR:
        raise AddressError("address out of range: %r" % (value,))
    return "%d.%d.%d.%d" % (
        (value >> 24) & 0xFF,
        (value >> 16) & 0xFF,
        (value >> 8) & 0xFF,
        value & 0xFF,
    )


def _mask(length: int) -> int:
    if not 0 <= length <= 32:
        raise AddressError("prefix length out of range: %r" % (length,))
    if length == 0:
        return 0
    return (_MAX_ADDR << (32 - length)) & _MAX_ADDR


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix: network address (int) plus mask length.

    Instances are immutable, hashable, and totally ordered (by network
    address then length), so they can key dictionaries and sort stably.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        mask = _mask(self.length)
        if self.network & ~mask & _MAX_ADDR:
            raise AddressError(
                "host bits set in %s/%d"
                % (format_address(self.network), self.length)
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse CIDR notation, e.g. ``"192.0.2.0/24"``."""
        if "/" not in text:
            raise AddressError("expected CIDR notation, got %r" % (text,))
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressError("non-numeric prefix length in %r" % (text,))
        return cls(parse_address(addr_text), int(len_text))

    def __str__(self) -> str:
        return "%s/%d" % (format_address(self.network), self.length)

    @property
    def mask(self) -> int:
        return _mask(self.length)

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    @property
    def first_address(self) -> int:
        return self.network

    @property
    def last_address(self) -> int:
        return self.network | (~self.mask & _MAX_ADDR)

    def contains_address(self, address: int) -> bool:
        """Return True if *address* falls inside this prefix."""
        return (address & self.mask) == self.network

    def covers(self, other: "Prefix") -> bool:
        """Return True if this prefix covers *other* (equal or less
        specific)."""
        return (
            self.length <= other.length
            and (other.network & self.mask) == self.network
        )

    def properly_covers(self, other: "Prefix") -> bool:
        """Return True if this prefix covers *other* and is strictly less
        specific."""
        return self.length < other.length and self.covers(other)

    def address_at(self, offset: int) -> int:
        """Return the address *offset* positions into the prefix."""
        if not 0 <= offset < self.num_addresses:
            raise AddressError(
                "offset %d outside %s" % (offset, self)
            )
        return self.network + offset

    def subprefixes(self, length: int) -> Iterator["Prefix"]:
        """Yield the subprefixes of the given (more specific) length."""
        if length < self.length:
            raise AddressError(
                "cannot split %s into shorter /%d" % (self, length)
            )
        step = 1 << (32 - length)
        for network in range(self.network, self.last_address + 1, step):
            yield Prefix(network, length)


def exclude_covered(prefixes: Iterable[Prefix]) -> Tuple[List[Prefix], List[Prefix]]:
    """Split *prefixes* into (kept, excluded) where excluded prefixes are
    entirely covered by some other, less specific prefix in the input.

    The paper (§3.2) excludes 437 prefixes entirely covered by other
    prefixes before seeding.  Duplicates count as covered (one survivor is
    kept).
    """
    ordered = sorted(set(prefixes), key=lambda p: (p.network, p.length))
    kept: List[Prefix] = []
    excluded: List[Prefix] = []
    seen = set()
    for prefix in sorted(prefixes, key=lambda p: (p.network, p.length)):
        if prefix in seen:
            excluded.append(prefix)
            continue
        seen.add(prefix)
        covered = False
        # Candidates that could cover this prefix are earlier in sorted
        # order; scan kept prefixes from the end while they could still
        # overlap.
        for other in reversed(kept):
            if other.last_address < prefix.network:
                break
            if other.properly_covers(prefix):
                covered = True
                break
        if covered:
            excluded.append(prefix)
        else:
            kept.append(prefix)
    return kept, excluded


def find_covering(prefixes: Iterable[Prefix], address: int) -> Optional[Prefix]:
    """Return the most specific prefix in *prefixes* containing *address*,
    or None (longest-prefix match over an arbitrary iterable)."""
    best: Optional[Prefix] = None
    for prefix in prefixes:
        if prefix.contains_address(address):
            if best is None or prefix.length > best.length:
                best = prefix
    return best
