#!/usr/bin/env python3
"""Figure 4 case study: the NIKS localpref asymmetry.

NIKS (AS 3267) assigns localpref 102 to routes from GEANT and 50 to
routes from both NORDUnet and Arelion.  The SURF-announced measurement
prefix reaches NIKS via GEANT (SURF is GEANT's member), so NIKS always
uses the R&E route in the May experiment.  The Internet2-announced
prefix only reaches NIKS via NORDUnet — Gao-Rexford export stops GEANT
from handing a fabric-peer route to its non-fabric peer NIKS — where it
ties with the commodity route on localpref 50 and wins or loses on AS
path length.

This script replays both experiments over the Figure 4 topology and
narrates NIKS's BGP decision at each prepend configuration.
"""

from repro import Announcement, Prefix, propagate_fastpath
from repro.bgp.decision import explain_choice
from repro.experiment.schedule import PREPEND_SEQUENCE, parse_prepend_config
from repro.topology.scenarios import build_niks_scenario

MEAS = Prefix.parse("163.253.63.0/24")


def run_experiment(topo, asns, experiment: str) -> None:
    re_origin = (
        asns["surf_origin"] if experiment == "surf" else asns["internet2"]
    )
    print("=" * 64)
    print("%s experiment (R&E origin AS %d)" % (experiment.upper(), re_origin))
    print("=" * 64)
    selections = []
    for config in PREPEND_SEQUENCE:
        re_p, comm_p = parse_prepend_config(config)
        result = propagate_fastpath(
            topo,
            [
                Announcement(MEAS, re_origin, default_prepends=re_p,
                             tag="re"),
                Announcement(MEAS, asns["commodity_origin"],
                             default_prepends=comm_p, tag="commodity"),
            ],
        )
        best = result.route_at(asns["niks"])
        selections.append(best.tag)
        print(
            "%-4s NIKS selects %-9s lp=%-3d path=[%s]"
            % (config, best.tag, best.localpref, best.path)
        )
    print()
    first = selections[0]
    if all(s == first for s in selections):
        print("-> inference: always %s" % first)
    else:
        switch = PREPEND_SEQUENCE[selections.index("re")]
        print("-> inference: switch to R&E at configuration %s" % switch)
    print()


def narrate_decision(topo, asns) -> None:
    """Show the full candidate set and decision steps at 0-0 in the
    Internet2 experiment."""
    result = propagate_fastpath(
        topo,
        [
            Announcement(MEAS, asns["internet2"], tag="re"),
            Announcement(MEAS, asns["commodity_origin"], tag="commodity"),
        ],
    )
    candidates = result.candidates_at(asns["niks"])
    process = topo.node(asns["niks"]).policy.decision_process()
    print("NIKS decision at 0-0 (Internet2 experiment):")
    for line in explain_choice(process, candidates):
        print("   " + line)
    print()


def main() -> int:
    topo, asns = build_niks_scenario()
    print(__doc__)
    run_experiment(topo, asns, "surf")
    run_experiment(topo, asns, "internet2")
    narrate_decision(topo, asns)
    print(
        "The paper traced 161 of 363 cross-experiment differences to\n"
        "this single policy (Table 2); the cone of members behind NIKS\n"
        "flips from 'always R&E' to 'switch to R&E' between runs."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
