#!/usr/bin/env python3
"""Quickstart: run the full paper reproduction at a small scale.

Builds a synthetic R&E ecosystem, runs the SURF and Internet2
experiments with shared probe seeds, classifies every probed prefix,
and prints every table and figure the paper reports.

Usage::

    python examples/quickstart.py [scale] [seed]

Scale 0.1 (~265 member ASes, ~1.8K prefixes) runs in a few seconds;
scale 1.0 approximates the paper's population.
"""

import sys
import time

from repro import InferenceCategory, REEcosystemConfig, reproduce_paper


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    print("Building ecosystem (scale=%.2f, seed=%d) and running both" % (scale, seed))
    print("experiments — SURF (May 2025) and Internet2 (June 2025)...\n")
    started = time.time()
    report = reproduce_paper(REEcosystemConfig(scale=scale), seed=seed)
    elapsed = time.time() - started

    print(report.render())
    print()

    table = report.table1_internet2
    always_re = table.row(InferenceCategory.ALWAYS_RE)
    print(
        "Headline: systems in %.1f%% of %d responsive prefixes always "
        "returned over R&E." % (
            100.0 * always_re.prefix_share, table.total_prefixes,
        )
    )
    print("Completed in %.1f seconds." % elapsed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
