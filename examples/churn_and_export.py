#!/usr/bin/env python3
"""Figure 3 churn timeline + scamper-style JSON export.

Runs the Internet2 experiment, builds the collector churn report (the
sparse R&E-prepends phase vs the heavy commodity-prepends phase), and
writes the probe results and the BGP update log to JSONL files —
mirroring the dataset the paper released as its supplement.

Usage::

    python examples/churn_and_export.py [output_dir]
"""

import os
import sys

from repro import REEcosystemConfig, build_ecosystem
from repro.collectors import build_churn_report
from repro.core.report import experiment_collector
from repro.dataio import dump_experiment_file, dump_update_log
from repro.experiment import ExperimentRunner


def render_sparkline(series, width=60):
    """Cheap terminal rendering of the cumulative update curve."""
    if not series:
        return ""
    top = series[-1][1] or 1
    step = max(1, len(series) // width)
    blocks = " .:-=+*#%@"
    chars = []
    for index in range(0, len(series), step):
        _, value = series[index]
        chars.append(blocks[min(9, value * 9 // top)])
    return "".join(chars)


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "out"
    os.makedirs(out_dir, exist_ok=True)

    print("Building ecosystem and running the Internet2 experiment...")
    ecosystem = build_ecosystem(REEcosystemConfig(scale=0.1), seed=7)
    result = ExperimentRunner(ecosystem, "internet2", seed=7).run()

    collector = experiment_collector(ecosystem, result)
    report = build_churn_report(result, collector)

    print("\nFigure 3 reproduction (cumulative collector updates):")
    print("  " + render_sparkline(report.series))
    for row in report.summary_rows():
        print("  " + row)
    ratio = report.commodity_phase.updates / max(1, report.re_phase.updates)
    print(
        "  commodity/R&E phase ratio: %.0fx (the paper saw "
        "9,168 vs 162, ~57x)" % ratio
    )

    probes_path = os.path.join(out_dir, "internet2_probes.jsonl")
    updates_path = os.path.join(out_dir, "internet2_updates.jsonl")
    count = dump_experiment_file(result, probes_path)
    with open(updates_path, "w", encoding="utf-8") as stream:
        update_count = dump_update_log(result.update_log, stream)
    print("\nWrote %d probe records to %s" % (count, probes_path))
    print("Wrote %d update records to %s" % (update_count, updates_path))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
