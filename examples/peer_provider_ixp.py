#!/usr/bin/env python3
"""Figure 6: inferring peer-vs-provider preference at an IXP (§5).

The paper argues the method generalises beyond R&E: connect a host to
an IXP and to a selective Tier-1, announce a prefix over both, sweep
prepends, and watch which interface each member's return traffic uses.
An AS that flips with path length assigns equal localpref to peer and
provider routes; an AS that never flips prefers one class.

This script runs that inference for the Figure 6 'Alpha' AS under both
ground-truth policies, and demonstrates why 'Beta' (which also peers
with the Tier-1) is ambiguous.
"""

from repro import Announcement, Prefix, propagate_fastpath
from repro.topology.scenarios import build_ixp_scenario

PREFIX = Prefix.parse("192.0.2.0/24")

#: Prepend sweep: extra prepends on the IXP-side announcement, then on
#: the transit-side announcement (mirrors the paper's 4-0..0-4 design,
#: compressed).
SWEEP = [(2, 0), (1, 0), (0, 0), (0, 1), (0, 2)]


def probe_alpha(topo, asns):
    """Which route does Alpha use at each sweep step?"""
    selections = []
    for ixp_prepends, transit_prepends in SWEEP:
        result = propagate_fastpath(
            topo,
            [
                Announcement(
                    PREFIX,
                    asns["host"],
                    prepends={
                        asns["alpha"]: ixp_prepends,
                        asns["beta"]: ixp_prepends,
                        asns["tier1"]: transit_prepends,
                    },
                )
            ],
        )
        best = result.route_at(asns["alpha"])
        kind = "peer" if best.learned_from == asns["host"] else "provider"
        selections.append(kind)
    return selections


def infer(selections):
    if all(kind == selections[0] for kind in selections):
        return "always %s: localpref differentiates peer vs provider" % (
            selections[0],
        )
    return (
        "flips with AS path length: equal localpref on peer and "
        "provider routes"
    )


def main() -> int:
    print(__doc__)
    for equal in (True, False):
        topo, asns = build_ixp_scenario(alpha_equal_localpref=equal)
        truth = "equal localpref" if equal else "prefers the IXP peer route"
        selections = probe_alpha(topo, asns)
        print("Alpha ground truth: %s" % truth)
        for (ixp, transit), kind in zip(SWEEP, selections):
            print("   sweep %d-%d -> returns via %s" % (ixp, transit, kind))
        print("   inference: %s\n" % infer(selections))

    # Beta's ambiguity: both candidate routes are peer routes.
    topo, asns = build_ixp_scenario()
    result = propagate_fastpath(topo, [Announcement(PREFIX, asns["host"])])
    rels = {
        topo.rel(asns["beta"], route.learned_from).value
        for route in result.candidates_at(asns["beta"])
    }
    print(
        "Beta also peers with the Tier-1: its candidate routes are all "
        "%s routes,\nso peer-vs-provider preference cannot be isolated "
        "(the §5 caveat)." % "/".join(sorted(rels))
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
