#!/usr/bin/env python3
"""Control-plane vs data-plane: two views of the same inference.

The probing pipeline infers route preference from the *outside* —
response interfaces at a measurement host.  The
:class:`repro.core.survey.PreferenceSurvey` API computes the same
classification from converged RIBs directly.  On the synthetic
ecosystem both views are available, so this example runs both and
shows they agree — and then uses the survey to answer a question the
paper poses but the probing data cannot: what about the ~32% of
prefixes with *no responsive systems*?

Usage::

    python examples/preference_survey.py [scale] [seed]
"""

import sys
from collections import Counter

from repro import REEcosystemConfig, build_ecosystem
from repro.core.classify import (
    InferenceCategory,
    classify_experiment,
    origin_map,
)
from repro.core.survey import (
    AnnouncementSpec,
    PreferenceSurvey,
    SurveyCategory,
)
from repro.experiment import ExperimentRunner

#: Map survey categories onto probing categories for comparison.
CATEGORY_MAP = {
    SurveyCategory.ALWAYS_FIRST: InferenceCategory.ALWAYS_RE,
    SurveyCategory.ALWAYS_SECOND: InferenceCategory.ALWAYS_COMMODITY,
    SurveyCategory.SWITCHES_TO_FIRST: InferenceCategory.SWITCH_TO_RE,
    SurveyCategory.SWITCHES_TO_SECOND:
        InferenceCategory.SWITCH_TO_COMMODITY,
}


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11

    print("Building ecosystem (scale=%.2f)..." % scale)
    eco = build_ecosystem(REEcosystemConfig(scale=scale), seed=seed)

    print("Data plane: running the Internet2 experiment...")
    result = ExperimentRunner(eco, "internet2", seed=seed).run()
    inference = classify_experiment(result, origin_map(eco))

    print("Control plane: sweeping announcements over converged RIBs...")
    survey = PreferenceSurvey(
        eco.topology,
        AnnouncementSpec(eco.measurement_prefix, eco.internet2_origin,
                         "re"),
        AnnouncementSpec(eco.measurement_prefix, eco.commodity_origin,
                         "commodity"),
    )
    outcome = survey.run(
        targets=[t.asn for t in eco.members.values()
                 if t.asn != eco.ripe_asn]
    )

    # Agreement: per responsive *normal* prefix, the probing category
    # should match the survey category of its origin AS.
    from repro.topology.re_config import PrefixKind

    agree = disagree = 0
    for prefix, item in inference.inferences.items():
        plan = eco.prefix_plans[prefix]
        if plan.kind is not PrefixKind.NORMAL or not item.characterized:
            continue
        survey_category = CATEGORY_MAP.get(
            outcome.category_of(plan.origin_asn)
        )
        if survey_category is None:
            continue
        if survey_category is item.category:
            agree += 1
        else:
            disagree += 1
    total = agree + disagree
    print(
        "\nAgreement on responsive single-attachment prefixes: "
        "%d/%d (%.1f%%)" % (agree, total, 100.0 * agree / total)
    )
    print("(disagreements come from per-round packet loss and outages)")

    # The survey also covers members the probing never saw.
    probed_origins = {
        eco.prefix_plans[p].origin_asn for p in inference.inferences
    }
    unprobed = [
        asn for asn in outcome.targets if asn not in probed_origins
    ]
    counts = Counter(
        str(outcome.category_of(asn)) for asn in unprobed
    )
    print(
        "\nControl-plane coverage of the %d member ASes the probing "
        "could not reach:" % len(unprobed)
    )
    for category, count in counts.most_common():
        print("   %-22s %d" % (category, count))
    print(
        "\n(The paper's method is bounded by responsive systems — "
        "§3.2 reached 97.8%\nof ASes; a simulator has no such limit, "
        "which is how the ground truth\nbehind Tables 1-4 is known "
        "exactly.)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
